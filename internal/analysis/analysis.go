// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis used to build emsim-vet, the project's
// static-analysis gate. It deliberately mirrors the upstream shape — an
// Analyzer with a Run function over a typed Pass — so the checkers could
// be ported to the real framework wholesale if the x/tools dependency
// ever becomes available, but it is built entirely on the standard
// library: packages are enumerated with `go list`, dependencies are
// imported from compiler export data, and only the analyzed package
// itself is type-checked from source.
//
// Two project-specific comment directives drive the suite:
//
//	//emsim:noalloc
//	    placed in a function's doc comment, declares that the function
//	    must not allocate in the steady state. The noalloc analyzer
//	    verifies the declaration at every call site it can see.
//
//	//emsim:ignore <analyzer> <reason>
//	    suppresses the named analyzer's findings on the comment's line
//	    and on the line directly below it. The reason is mandatory; a
//	    reason-less suppression is itself reported and suppresses
//	    nothing. The reason ends at the first "//", so test scaffolding
//	    (or a second comment) on the same line is not swallowed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //emsim:ignore suppressions. It must be a single word.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module exposes module-wide facts (currently the //emsim:noalloc
	// annotation set) collected from every package in the module, so an
	// analyzer can reason about cross-package calls.
	Module *ModuleInfo

	diagnostics []diagnostic
	suppressed  map[string]suppression
}

// SuppressedAt reports whether a finding by this pass's analyzer at pos
// would be silenced by an //emsim:ignore directive. Analyzers whose
// checks propagate (noalloc's callee inheritance) use this to stop
// propagation through an acknowledged exception.
func (p *Pass) SuppressedAt(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	_, ok := p.suppressed[suppressKey(p.Analyzer.Name, position.Filename, position.Line)]
	return ok
}

type diagnostic struct {
	pos     token.Pos
	message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, diagnostic{pos: pos, message: fmt.Sprintf(format, args...)})
}

// A Finding is one diagnostic, positioned and attributed to its analyzer.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}

// SuppressionAnalyzer is the pseudo-analyzer name under which malformed
// //emsim:ignore comments are reported. It cannot itself be suppressed.
const SuppressionAnalyzer = "suppression"

// ignorePrefix is the suppression directive prefix.
const ignorePrefix = "//emsim:ignore"

// suppression is one parsed //emsim:ignore directive.
type suppression struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

// parseSuppressions extracts every //emsim:ignore directive from the
// files' comments.
func parseSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				// A nested "//" (for example test scaffolding) ends the
				// directive.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				pos := fset.Position(c.Pos())
				out = append(out, suppression{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// Run applies every analyzer to every package, resolves suppressions, and
// returns the surviving findings sorted by position. Malformed
// suppressions (missing analyzer name or reason, or naming an analyzer
// that does not exist) are themselves reported.
func Run(pkgs []*Package, mod *ModuleInfo, analyzers []*Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		sups := parseSuppressions(pkg.Fset, pkg.Files)
		active := map[string]suppression{}
		for _, s := range sups {
			switch {
			case s.analyzer == "":
				findings = append(findings, Finding{
					Analyzer: SuppressionAnalyzer,
					Position: pkg.Fset.Position(s.pos),
					Message:  "emsim:ignore needs an analyzer name and a reason",
				})
			case !known[s.analyzer]:
				findings = append(findings, Finding{
					Analyzer: SuppressionAnalyzer,
					Position: pkg.Fset.Position(s.pos),
					Message:  fmt.Sprintf("emsim:ignore names unknown analyzer %q", s.analyzer),
				})
			case s.reason == "":
				findings = append(findings, Finding{
					Analyzer: SuppressionAnalyzer,
					Position: pkg.Fset.Position(s.pos),
					Message:  fmt.Sprintf("emsim:ignore %s is missing its required reason", s.analyzer),
				})
			default:
				// The directive covers its own line and the next one, so
				// it can trail the flagged statement or sit above it.
				active[suppressKey(s.analyzer, s.file, s.line)] = s
				active[suppressKey(s.analyzer, s.file, s.line+1)] = s
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				Module:     mod,
				suppressed: active,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diagnostics {
				pos := pkg.Fset.Position(d.pos)
				if _, ok := active[suppressKey(a.Name, pos.Filename, pos.Line)]; ok {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func suppressKey(analyzer, file string, line int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", analyzer, file, line)
}

// FuncHasDirective reports whether the function's doc comment contains
// the given comment directive (for example "emsim:noalloc").
func FuncHasDirective(decl *ast.FuncDecl, directive string) bool {
	if decl.Doc == nil {
		return false
	}
	want := "//" + directive
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// ModuleInfo holds facts collected from every package in the module
// before analysis runs, keyed so they survive the package-at-a-time
// type-checking model (imported packages come from export data, which
// carries no comments).
type ModuleInfo struct {
	noalloc map[string]bool
}

// NewModuleInfo returns an empty fact set.
func NewModuleInfo() *ModuleInfo {
	return &ModuleInfo{noalloc: map[string]bool{}}
}

// AddNoalloc records that the function identified by key carries the
// //emsim:noalloc annotation.
func (m *ModuleInfo) AddNoalloc(key string) { m.noalloc[key] = true }

// IsNoallocKey reports whether the function identified by key is
// annotated //emsim:noalloc.
func (m *ModuleInfo) IsNoallocKey(key string) bool { return m.noalloc[key] }

// IsNoallocFunc reports whether fn is annotated //emsim:noalloc.
func (m *ModuleInfo) IsNoallocFunc(fn *types.Func) bool { return m.noalloc[FuncKey(fn)] }

// NoallocCount returns the number of annotated functions (for reporting).
func (m *ModuleInfo) NoallocCount() int { return len(m.noalloc) }

// FuncKey returns the module-wide key of a function object:
// "pkgpath.Func" for package functions and "pkgpath.Type.Method" for
// methods (pointer receivers are keyed by their element type).
func FuncKey(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			return pkg.Path() + "." + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg.Path() + "." + fn.Name()
}

// CollectAnnotations scans a package's syntax for //emsim:noalloc
// directives and records them in m under pkgPath.
func (m *ModuleInfo) CollectAnnotations(pkgPath string, files []*ast.File) {
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !FuncHasDirective(fd, "emsim:noalloc") {
				continue
			}
			m.AddNoalloc(declKey(pkgPath, fd))
		}
	}
}

// declKey computes the module-wide key of a declaration syntactically,
// matching FuncKey's object-based form.
func declKey(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		// Generic receivers (Type[T]) do not occur in this module, but
		// unwrap them anyway so the key stays stable if they appear.
		if idx, ok := t.(*ast.IndexExpr); ok {
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkgPath + "." + id.Name + "." + fd.Name.Name
		}
	}
	return pkgPath + "." + fd.Name.Name
}
