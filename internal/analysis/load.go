package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// LoadResult bundles the analyzed packages with module-wide facts.
type LoadResult struct {
	Packages []*Package
	Module   *ModuleInfo
	Fset     *token.FileSet
}

// ListedPackage is the subset of `go list -json` output the loader needs.
type ListedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// GoList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func GoList(dir string, args ...string) ([]ListedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = string(ee.Stderr)
		}
		return nil, fmt.Errorf("analysis: go %v: %s", args, msg)
	}
	var pkgs []ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that reads compiler export data
// from the given importPath->file map (as produced by `go list -export`).
// The importer memoizes, so one instance can serve many type-checks.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q (is the package listed with -deps -export?)", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// NewTypesInfo returns a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// ParseDirFiles parses the named files (relative to dir) with comments.
func ParseDirFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load enumerates the packages matching the patterns (run from dir),
// type-checks each matching package from source with its dependencies
// imported from compiler export data, and collects module-wide
// annotations from every non-standard-library package in the dependency
// closure — so cross-package noalloc queries work even when the analyzed
// patterns are narrower than ./... .
//
// Packages that fail to type-check abort the load: the module must build
// before it can be vetted.
func Load(dir string, patterns ...string) (*LoadResult, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles",
	}, patterns...)
	listed, err := GoList(dir, args...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := ExportImporter(fset, exports)

	mod := NewModuleInfo()
	res := &LoadResult{Module: mod, Fset: fset}
	for _, p := range listed {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files, err := ParseDirFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", p.ImportPath, err)
		}
		mod.CollectAnnotations(p.ImportPath, files)
		if p.DepOnly {
			continue // annotations only; not an analysis target
		}
		info := NewTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
		}
		res.Packages = append(res.Packages, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	sort.Slice(res.Packages, func(i, j int) bool {
		return res.Packages[i].ImportPath < res.Packages[j].ImportPath
	})
	return res, nil
}
