package a

import (
	"fmt"
	"math"
	"strings"
)

type ring struct {
	data []float64
	n    int
}

// Negative: append through the receiver reuses the receiver's backing
// array in the steady state.
//
//emsim:noalloc
func (r *ring) push(v float64) {
	r.data = append(r.data, v)
}

//emsim:noalloc
func appendParam(xs []float64, v float64) []float64 {
	return append(xs, v) // want `append to a slice not owned by the receiver`
}

//emsim:noalloc
func closure(n int) int {
	f := func() int { return n } // want `function literal may allocate a closure`
	return f()                   // want `call through function value f`
}

//emsim:noalloc
func box(v float64) any {
	return v // want `return converted to interface boxes a float64 value`
}

// Negative: pointers are stored directly in the interface word.
//
//emsim:noalloc
func noBox(r *ring) any {
	return r
}

//emsim:noalloc
func format(v float64) {
	fmt.Println(v) // want `call to fmt.Println allocates`
}

//emsim:noalloc
func mapLit() int {
	m := map[int]int{} // want `map literal allocates`
	return len(m)
}

//emsim:noalloc
func makeSlice(n int) int {
	xs := make([]float64, n) // want `make allocates`
	return len(xs)
}

//emsim:noalloc
func spawn(ch chan int) {
	go func() { ch <- 1 }() // want `go statement allocates a goroutine` `function literal may allocate a closure`
}

//emsim:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

type stepper interface{ Step() }

//emsim:noalloc
func dynamic(s stepper) {
	s.Step() // want `call through interface method Step`
}

//emsim:noalloc
func stdlibCall(s string) []string {
	return strings.Split(s, ",") // want `call to strings.Split \(not on the allocation-free allowlist\)`
}

// Negative: math is on the allocation-free allowlist.
//
//emsim:noalloc
func allowed(x float64) float64 {
	return math.Sqrt(x)
}

// Negative: an annotated function may call an unannotated same-package
// helper — the helper inherits the check...
//
//emsim:noalloc
func outer(n int) int {
	return helper(n)
}

// ...and violations inside the helper are still caught.
func helper(n int) int {
	xs := make([]int, n) // want `make allocates`
	return len(xs)
}

// Negative: amortized growth is a deliberate, documented exception.
//
//emsim:noalloc
func (r *ring) grow(n int) {
	if cap(r.data) < n {
		//emsim:ignore noalloc amortized warm-up growth; steady state reuses the buffer
		r.data = append(make([]float64, 0, n), r.data...)
	}
	r.data = r.data[:n]
}

// Negative: a suppressed call is an acknowledged exception, so the
// callee is not dragged into the verified set through that edge.
//
//emsim:noalloc
func callsAllocatingHelper() []float64 {
	//emsim:ignore noalloc the table is rebuilt once per call by design
	return buildTable()
}

func buildTable() []float64 {
	return make([]float64, 16)
}

// Negative: unannotated and unreachable from any annotated root, so its
// allocations are its own business.
func coldPath(msg string) error {
	return fmt.Errorf("cold: %s", msg)
}
