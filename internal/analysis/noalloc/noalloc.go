// Package noalloc verifies the //emsim:noalloc contract: a function so
// annotated must not allocate on the heap in the steady state. The
// simulator's trace→amplitude→signal hot path (cpu.StepInto, the
// Reconstructor, core.Session.SimulateProgramInto) carries the
// annotation; this analyzer makes the AllocsPerRun pins enforceable at
// every call site instead of only the ones the tests happen to cover.
//
// Within an annotated function (and, transitively, every same-package
// function it calls) the analyzer flags:
//
//   - append to a slice not owned by the method receiver
//   - function literals (closures) and method values
//   - implicit or explicit conversions of non-pointer-shaped values to
//     interface types
//   - calls into package fmt
//   - map/slice composite literals, make, new, and string concatenation
//   - go statements
//   - calls through interfaces or function values (unverifiable)
//   - calls to module functions not annotated //emsim:noalloc, and to
//     standard-library functions outside a small allocation-free
//     allowlist (math, math/bits, sync/atomic)
//
// Deliberate exceptions — amortized buffer growth, cold error paths —
// are suppressed in place with //emsim:ignore noalloc <reason>, keeping
// every exception visible and justified.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"emsim/internal/analysis"
)

// Analyzer is the noalloc checker.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "verify that //emsim:noalloc functions cannot allocate in the steady state",
	Run:  run,
}

// allowPkgs are standard-library packages whose exported functions are
// known not to allocate.
var allowPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

func run(pass *analysis.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
			if analysis.FuncHasDirective(fd, "emsim:noalloc") {
				roots = append(roots, fd)
			}
		}
	}
	c := &checker{pass: pass, decls: decls, checked: map[*ast.FuncDecl]bool{}}
	queue := roots
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if c.checked[fd] || fd.Body == nil {
			continue
		}
		c.checked[fd] = true
		queue = append(queue, c.checkFunc(fd)...)
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	checked map[*ast.FuncDecl]bool
}

// checkFunc scans one function body and returns same-package callees
// that must inherit the check.
func (c *checker) checkFunc(fd *ast.FuncDecl) []*ast.FuncDecl {
	info := c.pass.TypesInfo
	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvObj = info.Defs[fd.Recv.List[0].Names[0]]
	}
	var sig *types.Signature
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}

	// Collect the expressions used as call operands, so x.M as a call is
	// not also flagged as a method value.
	calleeExprs := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calleeExprs[unparen(call.Fun)] = true
		}
		return true
	})

	var todo []*ast.FuncDecl
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.pass.Reportf(n.Pos(), "function literal may allocate a closure in noalloc function %s", fd.Name.Name)
			return false // its body is not part of the steady-state path proper
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement allocates a goroutine in noalloc function %s", fd.Name.Name)
		case *ast.CompositeLit:
			t := info.Types[n].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					c.pass.Reportf(n.Pos(), "map literal allocates in noalloc function %s", fd.Name.Name)
				case *types.Slice:
					c.pass.Reportf(n.Pos(), "slice literal allocates in noalloc function %s", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.Types[n.X].Type) {
				c.pass.Reportf(n.Pos(), "string concatenation allocates in noalloc function %s", fd.Name.Name)
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !calleeExprs[ast.Expr(n)] {
				c.pass.Reportf(n.Pos(), "method value %s allocates a closure in noalloc function %s", n.Sel.Name, fd.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					c.checkIfaceConv(fd, info.Types[n.Lhs[i]].Type, n.Rhs[i], "assignment")
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				t := info.Types[n.Type].Type
				for _, v := range n.Values {
					c.checkIfaceConv(fd, t, v, "variable initialization")
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, r := range n.Results {
					c.checkIfaceConv(fd, sig.Results().At(i).Type(), r, "return")
				}
			}
		case *ast.CallExpr:
			todo = append(todo, c.checkCall(fd, recvObj, n)...)
		}
		return true
	})
	return todo
}

// checkCall classifies one call expression. It returns same-package
// declarations to check transitively.
func (c *checker) checkCall(fd *ast.FuncDecl, recvObj types.Object, call *ast.CallExpr) []*ast.FuncDecl {
	info := c.pass.TypesInfo
	fun := unparen(call.Fun)

	// Conversion, not a call.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		c.checkConversion(fd, tv.Type, call)
		return nil
	}

	// Builtin.
	if id, ok := calleeIdent(fun); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			c.checkBuiltin(fd, recvObj, b.Name(), call)
			return nil
		}
	}

	fn, dynamic := resolveCallee(info, fun)
	if dynamic != "" {
		c.pass.Reportf(call.Pos(), "%s in noalloc function %s cannot be verified allocation-free", dynamic, fd.Name.Name)
		return nil
	}
	if fn == nil {
		if _, isLit := fun.(*ast.FuncLit); isLit {
			return nil // the literal itself is already flagged
		}
		c.pass.Reportf(call.Pos(), "unresolvable call in noalloc function %s", fd.Name.Name)
		return nil
	}

	pkg := fn.Pkg()
	switch {
	case pkg == nil:
		// Universe-scope methods (error.Error) arrive via interfaces and
		// are reported as dynamic calls above.
	case pkg.Path() == "fmt":
		c.pass.Reportf(call.Pos(), "call to fmt.%s allocates in noalloc function %s", fn.Name(), fd.Name.Name)
		return nil
	case pkg == c.pass.Pkg:
		if decl, ok := c.decls[fn]; ok {
			if !analysis.FuncHasDirective(decl, "emsim:noalloc") {
				// A suppressed call site is an acknowledged exception; the
				// callee is not on the verified path through this edge.
				if c.pass.SuppressedAt(call.Pos()) {
					return nil
				}
				return []*ast.FuncDecl{decl} // inherit the check
			}
		} else if !c.pass.Module.IsNoallocFunc(fn) {
			c.pass.Reportf(call.Pos(), "call to %s (no body visible) in noalloc function %s", fn.Name(), fd.Name.Name)
			return nil
		}
	case isModulePath(pkg.Path()):
		if !c.pass.Module.IsNoallocFunc(fn) {
			c.pass.Reportf(call.Pos(), "call to %s.%s, which is not annotated //emsim:noalloc, in noalloc function %s",
				pkg.Name(), fn.Name(), fd.Name.Name)
			return nil
		}
	default:
		if !allowPkgs[pkg.Path()] {
			c.pass.Reportf(call.Pos(), "call to %s.%s (not on the allocation-free allowlist) in noalloc function %s",
				pkg.Name(), fn.Name(), fd.Name.Name)
			return nil
		}
	}

	// The callee is acceptable; its arguments may still box.
	if sig, ok := fn.Type().(*types.Signature); ok {
		params := sig.Params()
		if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) > params.Len()-1 {
			c.pass.Reportf(call.Pos(), "variadic call to %s allocates its argument slice in noalloc function %s",
				fn.Name(), fd.Name.Name)
		}
		n := params.Len()
		if sig.Variadic() {
			n-- // the variadic slice is flagged above
		}
		for i := 0; i < n && i < len(call.Args); i++ {
			c.checkIfaceConv(fd, params.At(i).Type(), call.Args[i], "argument")
		}
	}
	return nil
}

func (c *checker) checkBuiltin(fd *ast.FuncDecl, recvObj types.Object, name string, call *ast.CallExpr) {
	info := c.pass.TypesInfo
	switch name {
	case "append":
		if len(call.Args) == 0 {
			return
		}
		if !isReceiverOwned(info, call.Args[0], recvObj) {
			c.pass.Reportf(call.Pos(), "append to a slice not owned by the receiver may allocate in noalloc function %s", fd.Name.Name)
		}
	case "make":
		t := info.Types[call].Type
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Map:
			c.pass.Reportf(call.Pos(), "make(map) allocates in noalloc function %s", fd.Name.Name)
		case *types.Chan:
			c.pass.Reportf(call.Pos(), "make(chan) allocates in noalloc function %s", fd.Name.Name)
		default:
			c.pass.Reportf(call.Pos(), "make allocates in noalloc function %s (amortized growth needs an //emsim:ignore with a reason)", fd.Name.Name)
		}
	case "new":
		c.pass.Reportf(call.Pos(), "new allocates in noalloc function %s", fd.Name.Name)
	}
}

// checkConversion flags conversions that allocate: concrete values boxed
// into interfaces and string<->slice/int conversions.
func (c *checker) checkConversion(fd *ast.FuncDecl, dst types.Type, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	src := c.pass.TypesInfo.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	if types.IsInterface(dst) {
		c.checkIfaceConv(fd, dst, call.Args[0], "conversion")
		return
	}
	dstStr, srcStr := isString(dst), isString(src)
	switch {
	case dstStr && !srcStr:
		c.pass.Reportf(call.Pos(), "conversion to string allocates in noalloc function %s", fd.Name.Name)
	case srcStr && !dstStr:
		if _, ok := dst.Underlying().(*types.Slice); ok {
			c.pass.Reportf(call.Pos(), "conversion of string to slice allocates in noalloc function %s", fd.Name.Name)
		}
	}
}

// checkIfaceConv reports expr if assigning it to dst boxes a
// non-pointer-shaped concrete value into an interface.
func (c *checker) checkIfaceConv(fd *ast.FuncDecl, dst types.Type, expr ast.Expr, context string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) || isDirectIface(tv.Type) {
		return
	}
	c.pass.Reportf(expr.Pos(), "%s converted to interface boxes a %s value in noalloc function %s",
		context, tv.Type.String(), fd.Name.Name)
}

// resolveCallee returns the static callee, or a description of why the
// call is dynamic.
func resolveCallee(info *types.Info, fun ast.Expr) (fn *types.Func, dynamic string) {
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return obj, ""
		case *types.Var:
			return nil, "call through function value " + fun.Name
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if types.IsInterface(sel.Recv()) {
				return nil, "call through interface method " + fun.Sel.Name
			}
			if f, ok := sel.Obj().(*types.Func); ok {
				return f, ""
			}
			return nil, "call through function-typed field " + fun.Sel.Name
		}
		// Package-qualified reference.
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return obj, ""
		case *types.Var:
			return nil, "call through function variable " + fun.Sel.Name
		}
	case *ast.IndexExpr:
		// Generic instantiation F[T](...).
		return resolveCallee(info, fun.X)
	}
	return nil, ""
}

// calleeIdent unwraps fun to its identifier, if it has one.
func calleeIdent(fun ast.Expr) (*ast.Ident, bool) {
	id, ok := fun.(*ast.Ident)
	return id, ok
}

// isReceiverOwned reports whether the expression is rooted at the method
// receiver (r.buf, r.x.buf, r.bufs[i], ...).
func isReceiverOwned(info *types.Info, expr ast.Expr, recvObj types.Object) bool {
	if recvObj == nil {
		return false
	}
	for {
		switch e := unparen(expr).(type) {
		case *ast.Ident:
			return info.Uses[e] == recvObj || info.Defs[e] == recvObj
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// isDirectIface reports whether values of t are stored directly in an
// interface word (pointer-shaped), so boxing them does not allocate.
func isDirectIface(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 1 && isDirectIface(u.Field(0).Type())
	case *types.Array:
		return u.Len() == 1 && isDirectIface(u.Elem())
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isModulePath(path string) bool {
	return path == "emsim" || strings.HasPrefix(path, "emsim/")
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
