package noalloc_test

import (
	"path/filepath"
	"testing"

	"emsim/internal/analysis/analysistest"
	"emsim/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), noalloc.Analyzer)
}
