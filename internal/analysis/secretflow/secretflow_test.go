package secretflow_test

import (
	"path/filepath"
	"testing"

	"emsim/internal/analysis/analysistest"
	"emsim/internal/analysis/secretflow"
)

func TestSecretflow(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), secretflow.Analyzer)
}
