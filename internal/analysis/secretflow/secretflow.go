// Package secretflow verifies the //emsim:ct constant-time contract: a
// function so annotated must not let secret data steer control flow or
// memory addressing, the properties EMSim's leakage assessments assume
// hold (or deliberately do not hold) in the software under test.
//
// Secrets enter through annotations: //emsim:secret <param> [param...]
// in a ct function's doc comment taints the named parameters, and a
// bare //emsim:secret on a struct field's doc comment taints that field
// module-wide. Inside a ct function the analyzer propagates taint
// intraprocedurally over assignments, ranges and copy, then flags:
//
//   - branch conditions (if, switch tags and case values) that depend
//     on secret data
//   - loop bounds (for conditions, range over secret slices/maps) that
//     depend on secret data
//   - slice/array/map accesses indexed by secret data — the classic
//     table-lookup leak
//   - secret data escaping to calls that are not themselves //emsim:ct
//     (math/bits is allowlisted as constant-time), with a sharper
//     message when the sink is fmt or log
//
// Taint is conservative: any expression computed from a secret operand
// is secret, and a call forwarding a secret argument returns secret
// data. Deliberate exceptions — the AES S-box lookups the leakage model
// depends on — are suppressed in place with //emsim:ignore secretflow
// <reason>, keeping every non-constant-time operation visible.
package secretflow

import (
	"go/ast"
	"go/types"

	"emsim/internal/analysis"
)

// Analyzer is the secretflow checker.
var Analyzer = &analysis.Analyzer{
	Name: "secretflow",
	Doc:  "verify that //emsim:ct functions keep //emsim:secret data out of control flow and memory indexing",
	Run:  run,
}

// allowPkgs are standard-library packages whose functions are
// constant-time on all supported targets.
var allowPkgs = map[string]bool{
	"math/bits": true,
}

// logPkgs are sinks that persist or print their arguments; a secret
// reaching one is reported with a sharper message.
var logPkgs = map[string]bool{
	"fmt": true,
	"log": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			secretParams, hasSecret := analysis.FuncDirectiveArgs(fd, "emsim:secret")
			isCT := analysis.FuncHasDirective(fd, "emsim:ct")
			if hasSecret && !isCT {
				pass.Reportf(fd.Pos(), "emsim:secret on %s has no effect without //emsim:ct", fd.Name.Name)
				continue
			}
			if !isCT || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, fd: fd, tainted: map[types.Object]bool{}}
			c.seedParams(secretParams)
			c.propagate()
			c.check()
		}
	}
	return nil
}

// checker holds the taint state for one ct function.
type checker struct {
	pass    *analysis.Pass
	fd      *ast.FuncDecl
	tainted map[types.Object]bool
}

// seedParams taints the parameters named by //emsim:secret.
func (c *checker) seedParams(names []string) {
	params := map[string]types.Object{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if obj := c.pass.TypesInfo.Defs[n]; obj != nil {
					params[n.Name] = obj
				}
			}
		}
	}
	addFields(c.fd.Recv)
	addFields(c.fd.Type.Params)
	for _, name := range names {
		obj, ok := params[name]
		if !ok {
			c.pass.Reportf(c.fd.Pos(), "emsim:secret on %s names unknown parameter %q", c.fd.Name.Name, name)
			continue
		}
		c.tainted[obj] = true
	}
}

// propagate runs assignment-based taint propagation to a fixpoint.
func (c *checker) propagate() {
	info := c.pass.TypesInfo
	for {
		changed := false
		taint := func(lhs ast.Expr) {
			if obj := c.baseObject(lhs); obj != nil && !c.tainted[obj] {
				c.tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(c.fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				switch {
				case len(n.Lhs) == len(n.Rhs):
					for i := range n.Lhs {
						if c.taintedExpr(n.Rhs[i]) {
							taint(n.Lhs[i])
						}
					}
				case len(n.Rhs) == 1: // multi-value call or comma-ok
					if c.taintedExpr(n.Rhs[0]) {
						for _, l := range n.Lhs {
							taint(l)
						}
					}
				}
			case *ast.ValueSpec:
				switch {
				case len(n.Values) == len(n.Names):
					for i := range n.Names {
						if c.taintedExpr(n.Values[i]) {
							taint(ast.Expr(n.Names[i]))
						}
					}
				case len(n.Values) == 1:
					if c.taintedExpr(n.Values[0]) {
						for _, name := range n.Names {
							taint(ast.Expr(name))
						}
					}
				}
			case *ast.RangeStmt:
				if n.X != nil && c.taintedExpr(n.X) {
					if n.Key != nil {
						taint(n.Key)
					}
					if n.Value != nil {
						taint(n.Value)
					}
				}
			case *ast.CallExpr:
				if id, ok := unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 2 {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
						if c.taintedExpr(n.Args[1]) {
							taint(n.Args[0])
						}
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// check walks the body once taint is complete and reports the
// secret-dependent operations the ct contract forbids.
func (c *checker) check() {
	info := c.pass.TypesInfo
	name := c.fd.Name.Name
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if c.taintedExpr(n.Cond) {
				c.pass.Reportf(n.Cond.Pos(), "branch condition depends on secret data in ct function %s", name)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && c.taintedExpr(n.Tag) {
				c.pass.Reportf(n.Tag.Pos(), "branch condition depends on secret data in ct function %s", name)
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				if c.taintedExpr(e) {
					c.pass.Reportf(e.Pos(), "branch condition depends on secret data in ct function %s", name)
				}
			}
		case *ast.ForStmt:
			if n.Cond != nil && c.taintedExpr(n.Cond) {
				c.pass.Reportf(n.Cond.Pos(), "loop bound depends on secret data in ct function %s", name)
			}
		case *ast.RangeStmt:
			if n.X != nil && c.taintedExpr(n.X) && !fixedLength(info.Types[n.X].Type) {
				c.pass.Reportf(n.X.Pos(), "loop bound depends on secret data in ct function %s", name)
			}
		case *ast.IndexExpr:
			if tv, ok := info.Types[n.X]; !ok || tv.IsType() || tv.Type == nil {
				return true // generic instantiation, not an access
			}
			if indexable(info.Types[n.X].Type) && c.taintedExpr(n.Index) {
				c.pass.Reportf(n.Pos(), "memory access indexed by secret data in ct function %s", name)
			}
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

// checkCall reports secret data escaping to a callee that is not itself
// verified constant-time.
func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	name := c.fd.Name.Name
	fun := unparen(call.Fun)

	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return // len/cap/copy/append do not branch on their operands
		}
	}

	anySecret := false
	for _, arg := range call.Args {
		if c.taintedExpr(arg) {
			anySecret = true
			break
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok && !anySecret {
		if _, isSel := info.Selections[sel]; isSel && c.taintedExpr(sel.X) {
			anySecret = true // method call on a secret-carrying receiver
		}
	}
	if !anySecret {
		return
	}

	fn, dynamic := resolveCallee(info, fun)
	if dynamic != "" {
		c.pass.Reportf(call.Pos(), "secret data passed through dynamic call (%s) in ct function %s", dynamic, name)
		return
	}
	if fn == nil {
		return
	}
	pkg := fn.Pkg()
	switch {
	case pkg == nil:
		return
	case allowPkgs[pkg.Path()]:
		return
	case c.pass.Module.IsCTFunc(fn):
		return
	case logPkgs[pkg.Path()]:
		c.pass.Reportf(call.Pos(), "secret data reaches logging call %s.%s in ct function %s", pkg.Name(), fn.Name(), name)
	default:
		c.pass.Reportf(call.Pos(), "secret data passed to non-ct function %s.%s in ct function %s", pkg.Name(), fn.Name(), name)
	}
}

// taintedExpr reports whether the expression's value may carry secret
// data. Computation is conservative: any expression with a secret
// operand is secret.
func (c *checker) taintedExpr(e ast.Expr) bool {
	info := c.pass.TypesInfo
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return false
		}
		if obj := info.Uses[e]; obj != nil {
			return c.tainted[obj]
		}
		if obj := info.Defs[e]; obj != nil {
			return c.tainted[obj]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && c.isSecretField(sel) {
			return true
		}
		return c.taintedExpr(e.X)
	case *ast.IndexExpr:
		return c.taintedExpr(e.X) || c.taintedExpr(e.Index)
	case *ast.SliceExpr:
		return c.taintedExpr(e.X)
	case *ast.StarExpr:
		return c.taintedExpr(e.X)
	case *ast.ParenExpr:
		return c.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return c.taintedExpr(e.X)
	case *ast.BinaryExpr:
		return c.taintedExpr(e.X) || c.taintedExpr(e.Y)
	case *ast.TypeAssertExpr:
		return c.taintedExpr(e.X)
	case *ast.KeyValueExpr:
		return c.taintedExpr(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if c.taintedExpr(el) {
				return true
			}
		}
	case *ast.CallExpr:
		if tv, ok := info.Types[unparen(e.Fun)]; ok && tv.IsType() {
			return len(e.Args) == 1 && c.taintedExpr(e.Args[0]) // conversion
		}
		if id, ok := unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "make", "new":
					return false
				}
			}
		}
		for _, arg := range e.Args {
			if c.taintedExpr(arg) {
				return true
			}
		}
		if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := info.Selections[sel]; isSel {
				return c.taintedExpr(sel.X)
			}
		}
	}
	return false
}

// isSecretField reports whether the selection reads an //emsim:secret
// struct field.
func (c *checker) isSecretField(sel *types.Selection) bool {
	v, ok := sel.Obj().(*types.Var)
	if !ok || !v.IsField() || v.Pkg() == nil {
		return false
	}
	t := sel.Recv()
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return c.pass.Module.IsSecretField(analysis.FieldKey(v.Pkg().Path(), named.Obj().Name(), v.Name()))
}

// baseObject returns the variable at the root of an assignable
// expression (x, x.f, x[i], *x all root at x).
func (c *checker) baseObject(e ast.Expr) types.Object {
	info := c.pass.TypesInfo
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			if obj := info.Defs[x]; obj != nil {
				return obj
			}
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// fixedLength reports whether ranging over t has a compile-time-fixed
// trip count (arrays and pointers to arrays), so the loop bound cannot
// leak even when the contents are secret.
func fixedLength(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Array)
	return ok
}

// indexable reports whether t is an array, slice, map or string — the
// shapes where a secret index addresses memory.
func indexable(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	switch u := t.Underlying().(type) {
	case *types.Array, *types.Slice, *types.Map:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// resolveCallee returns the static callee, or a description of why the
// call is dynamic.
func resolveCallee(info *types.Info, fun ast.Expr) (fn *types.Func, dynamic string) {
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return obj, ""
		case *types.Var:
			return nil, "function value " + fun.Name
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if types.IsInterface(sel.Recv()) {
				return nil, "interface method " + fun.Sel.Name
			}
			if f, ok := sel.Obj().(*types.Func); ok {
				return f, ""
			}
			return nil, "function-typed field " + fun.Sel.Name
		}
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return obj, ""
		case *types.Var:
			return nil, "function variable " + fun.Sel.Name
		}
	case *ast.IndexExpr:
		return resolveCallee(info, fun.X)
	}
	return nil, ""
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
