// Package a exercises the secretflow analyzer: flagged table lookups,
// branches, loop bounds and escapes, plus clean constant-time shapes
// and an acknowledged suppression.
package a

import (
	"fmt"
	"math/bits"

	"emsim/internal/aes"
)

var sbox [256]byte

// lookup is the classic table-lookup leak.
//
//emsim:ct
//emsim:secret k
func lookup(k byte) byte {
	return sbox[k] // want `memory access indexed by secret data in ct function lookup`
}

// branch flags secret-dependent control flow in both statement forms.
//
//emsim:ct
//emsim:secret k
func branch(k int) int {
	if k > 0 { // want `branch condition depends on secret data in ct function branch`
		return 1
	}
	switch k & 1 { // want `branch condition depends on secret data in ct function branch`
	case 0:
		return 2
	}
	return 0
}

// loop flags a secret trip count.
//
//emsim:ct
//emsim:secret n
func loop(n int) int {
	s := 0
	for i := 0; i < n; i++ { // want `loop bound depends on secret data in ct function loop`
		s += i
	}
	return s
}

// rangeLeak flags ranging over a secret slice (its length leaks)...
//
//emsim:ct
//emsim:secret key
func rangeLeak(key []byte) int {
	s := 0
	for _, b := range key { // want `loop bound depends on secret data in ct function rangeLeak`
		s += int(b)
	}
	return s
}

// rangeArray is clean: an array's trip count is fixed at compile time.
//
//emsim:ct
//emsim:secret key
func rangeArray(key [16]byte) int {
	s := 0
	for _, b := range key {
		s += int(b)
	}
	return s
}

func helper(v int) int { return v * 3 }

// escape flags secret data reaching an unverified callee.
//
//emsim:ct
//emsim:secret k
func escape(k int) int {
	return helper(k) // want `secret data passed to non-ct function a.helper in ct function escape`
}

// logs gets the sharper logging-sink message.
//
//emsim:ct
//emsim:secret k
func logs(k int) {
	fmt.Println(k) // want `secret data reaches logging call fmt.Println in ct function logs`
}

// derived shows taint propagating through local assignments.
//
//emsim:ct
//emsim:secret k
func derived(k byte) byte {
	x := k ^ 0xff
	y := x + 1
	return sbox[y] // want `memory access indexed by secret data in ct function derived`
}

// viaCopy shows taint propagating through the copy builtin.
//
//emsim:ct
//emsim:secret key
func viaCopy(key []byte) byte {
	buf := make([]byte, len(key))
	copy(buf, key)
	return sbox[buf[0]] // want `memory access indexed by secret data in ct function viaCopy`
}

// creds shows the struct-field annotation form.
type creds struct {
	//emsim:secret
	Key   [16]byte
	Nonce int
}

//emsim:ct
func fieldLeak(c creds) byte {
	return sbox[c.Key[0]] // want `memory access indexed by secret data in ct function fieldLeak`
}

// fieldClean is clean: Nonce is not annotated, so selecting it off the
// same struct taints nothing.
//
//emsim:ct
func fieldClean(c creds) int {
	return c.Nonce * 2
}

// mapLeak flags a secret map key (hash + probe sequence leak).
//
//emsim:ct
//emsim:secret k
func mapLeak(k string, m map[string]int) int {
	return m[k] // want `memory access indexed by secret data in ct function mapLeak`
}

// viaCallback flags secrets disappearing into a dynamic call.
//
//emsim:ct
//emsim:secret k
func viaCallback(k int, f func(int) int) int {
	return f(k) // want `secret data passed through dynamic call \(function value f\) in ct function viaCallback`
}

// crossCT is clean: aes.SBox carries //emsim:ct in its own package, so
// the module fact set admits the call.
//
//emsim:ct
//emsim:secret b
func crossCT(b byte) byte {
	return aes.SBox(b)
}

// hw is clean: math/bits is allowlisted as constant-time.
//
//emsim:ct
//emsim:secret v
func hw(v uint32) int {
	return bits.OnesCount32(v)
}

// acknowledged shows a justified suppression: no finding survives.
//
//emsim:ct
//emsim:secret k
func acknowledged(k byte) byte {
	//emsim:ignore secretflow the table lookup is the modeled leak under test
	return sbox[k]
}

// notCT is clean: without //emsim:ct nothing is checked.
func notCT(k int) int {
	if k > 0 {
		return 1
	}
	return 0
}

//emsim:secret k
func missingCT(k int) int { return k } // want `emsim:secret on missingCT has no effect without //emsim:ct`

//emsim:ct
//emsim:secret nosuch
func unknownParam(k int) int { return k } // want `emsim:secret on unknownParam names unknown parameter "nosuch"`
