package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"emsim/internal/analysis"
)

// markAnalyzer flags every call to a function named mark — a minimal
// analyzer with predictable positions for exercising the suppression
// machinery.
var markAnalyzer = &analysis.Analyzer{
	Name: "testcheck",
	Doc:  "flags every call to mark",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
					pass.Reportf(call.Pos(), "call to mark")
				}
				return true
			})
		}
		return nil
	},
}

// loadSource type-checks one in-memory file into an analysis.Package.
func loadSource(t *testing.T, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewTypesInfo()
	pkg, err := (&types.Config{}).Check("t", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Package{
		ImportPath: "t",
		Fset:       fset,
		Files:      []*ast.File{file},
		Types:      pkg,
		TypesInfo:  info,
	}
}

func runOn(t *testing.T, src string) *analysis.Result {
	t.Helper()
	pkg := loadSource(t, src)
	res, err := analysis.RunAll([]*analysis.Package{pkg}, analysis.NewModuleInfo(), []*analysis.Analyzer{markAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSuppressionCoversOnlyTheNextLine(t *testing.T) {
	// The directive covers its own line and the line directly below —
	// not the whole statement. The first operand of the multi-line
	// expression is silenced; the continuation line still reports.
	res := runOn(t, `package t

func mark(n int) int { return n }

func f() int {
	//emsim:ignore testcheck first operand acknowledged
	return mark(1) +
		mark(2)
}
`)
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", res.Suppressed)
	}
	if len(res.Findings) != 1 || !strings.Contains(res.Findings[0].Message, "call to mark") {
		t.Fatalf("findings = %v, want the continuation-line call to survive", res.Findings)
	}
	if res.Findings[0].Position.Line != 8 {
		t.Errorf("surviving finding at line %d, want 8 (the continuation line)", res.Findings[0].Position.Line)
	}
	if st := res.Stats["testcheck"]; st.Findings != 1 || st.Suppressed != 1 {
		t.Errorf("testcheck stats = %+v, want 1 finding / 1 suppressed", st)
	}
}

func TestSuppressionWrongAnalyzerName(t *testing.T) {
	// A directive naming an unknown analyzer silences nothing and is
	// itself reported; the finding it sat above survives.
	res := runOn(t, `package t

func mark(n int) int { return n }

func f() int {
	//emsim:ignore nosuch misspelled analyzer
	return mark(1)
}
`)
	if res.Suppressed != 0 {
		t.Errorf("Suppressed = %d, want 0", res.Suppressed)
	}
	var gotMark, gotHygiene bool
	for _, f := range res.Findings {
		switch f.Analyzer {
		case "testcheck":
			gotMark = true
		case analysis.SuppressionAnalyzer:
			gotHygiene = true
			if !strings.Contains(f.Message, `unknown analyzer "nosuch"`) {
				t.Errorf("hygiene message = %q", f.Message)
			}
		}
	}
	if !gotMark || !gotHygiene {
		t.Errorf("findings = %v, want both the mark call and the unknown-analyzer report", res.Findings)
	}
}

func TestSuppressionCoversTwoFindingsOnOneLine(t *testing.T) {
	// One directive above a line with two diagnostics silences both, and
	// each silenced diagnostic counts separately.
	res := runOn(t, `package t

func mark(n int) int { return n }

func f() int {
	//emsim:ignore testcheck both calls deliberate
	return mark(1) + mark(2)
}
`)
	if len(res.Findings) != 0 {
		t.Errorf("findings = %v, want none", res.Findings)
	}
	if res.Suppressed != 2 {
		t.Errorf("Suppressed = %d, want 2 (one per silenced diagnostic)", res.Suppressed)
	}
}

func TestSuppressionMissingReason(t *testing.T) {
	res := runOn(t, `package t

func mark(n int) int { return n }

func f() int {
	//emsim:ignore testcheck
	return mark(1)
}
`)
	var gotHygiene bool
	for _, f := range res.Findings {
		if f.Analyzer == analysis.SuppressionAnalyzer && strings.Contains(f.Message, "missing its required reason") {
			gotHygiene = true
		}
	}
	if !gotHygiene {
		t.Errorf("findings = %v, want a missing-reason report", res.Findings)
	}
	if res.Suppressed != 0 {
		t.Errorf("Suppressed = %d, want 0 (a reason-less directive silences nothing)", res.Suppressed)
	}
}

func TestStaleSuppressionReported(t *testing.T) {
	// A well-formed directive that filters nothing and is never consulted
	// is dead weight and must be reported.
	res := runOn(t, `package t

func clean(n int) int { return n }

func f() int {
	//emsim:ignore testcheck nothing flagged here anymore
	return clean(1)
}
`)
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %v, want exactly the stale report", res.Findings)
	}
	f := res.Findings[0]
	if f.Analyzer != analysis.SuppressionAnalyzer || !strings.Contains(f.Message, "matched no finding") {
		t.Errorf("finding = %v, want a stale-suppression report", f)
	}
	if st := res.Stats[analysis.SuppressionAnalyzer]; st.Findings != 1 {
		t.Errorf("suppression stats = %+v, want the stale report counted", st)
	}
}

func TestSuppressedAtMarksDirectiveUsed(t *testing.T) {
	// An analyzer consulting SuppressedAt (propagation stops, like
	// noalloc's callee inheritance) counts as using the directive even
	// when no diagnostic was filed, so it must not be reported stale.
	consulting := &analysis.Analyzer{
		Name: "testcheck",
		Doc:  "consults suppressions at every mark call without reporting",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
							pass.SuppressedAt(call.Pos())
						}
					}
					return true
				})
			}
			return nil
		},
	}
	pkg := loadSource(t, `package t

func mark(n int) int { return n }

func f() int {
	//emsim:ignore testcheck propagation stop, consulted not filtered
	return mark(1)
}
`)
	res, err := analysis.RunAll([]*analysis.Package{pkg}, analysis.NewModuleInfo(), []*analysis.Analyzer{consulting})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Errorf("findings = %v, want none (consulted directive is not stale)", res.Findings)
	}
}

// parseDecl returns the first function declaration of src.
func parseDecl(t *testing.T, src string) *ast.FuncDecl {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd
		}
	}
	t.Fatal("no function declaration in source")
	return nil
}

func TestFuncHasDirective(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"doc group", `package t

// f does things.
//
//emsim:ct
func f() {}
`, true},
		{"bare line comment", `package t

//emsim:ct
func f() {}
`, true},
		{"detached comment", `package t

//emsim:ct

func f() {}
`, false},
		{"directive with args", `package t

//emsim:ct extra words
func f() {}
`, true},
		{"prefix is not a match", `package t

//emsim:ctxflow
func f() {}
`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fd := parseDecl(t, tc.src)
			if got := analysis.FuncHasDirective(fd, "emsim:ct"); got != tc.want {
				t.Errorf("FuncHasDirective = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestFuncDirectiveArgs(t *testing.T) {
	fd := parseDecl(t, `package t

// f is annotated twice; the argument lists concatenate in order.
//
//emsim:secret key nonce
//emsim:secret extra
func f(key, nonce, extra []byte) {}
`)
	args, ok := analysis.FuncDirectiveArgs(fd, "emsim:secret")
	if !ok {
		t.Fatal("directive not found")
	}
	want := []string{"key", "nonce", "extra"}
	if len(args) != len(want) {
		t.Fatalf("args = %v, want %v", args, want)
	}
	for i := range want {
		if args[i] != want[i] {
			t.Fatalf("args = %v, want %v", args, want)
		}
	}

	bare := parseDecl(t, `package t

//emsim:ct
func f() {}
`)
	if args, ok := analysis.FuncDirectiveArgs(bare, "emsim:ct"); !ok || len(args) != 0 {
		t.Errorf("bare directive = (%v, %v), want (none, true)", args, ok)
	}
	if _, ok := analysis.FuncDirectiveArgs(bare, "emsim:secret"); ok {
		t.Error("absent directive reported present")
	}
}
