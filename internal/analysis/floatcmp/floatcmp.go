// Package floatcmp bans direct == and != on floating-point operands in
// the numeric packages (signal, stats, linalg by default). The kernel
// reconstruction and leakage statistics (Equ. 5/8/9) accumulate rounding
// error by construction, so an exact comparison is a latent bug — the
// WelchT degenerate-variance case fixed in this module is the canonical
// example. Comparisons against literal zero used as cheap "is it exactly
// the sentinel" guards must either move to the stats.ApproxEqual /
// stats.ApproxZero helpers or carry an //emsim:ignore floatcmp with a
// reason explaining why exactness is intended.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"emsim/internal/analysis"
)

// DefaultPaths are the packages checked by the stock analyzer: the ones
// doing the paper's floating-point arithmetic.
var DefaultPaths = []string{
	"emsim/internal/signal",
	"emsim/internal/stats",
	"emsim/internal/linalg",
}

// Analyzer checks the default package set.
var Analyzer = New(DefaultPaths...)

// New returns a floatcmp analyzer restricted to the given import paths
// (used by tests to point it at fixture packages).
func New(paths ...string) *analysis.Analyzer {
	scope := map[string]bool{}
	for _, p := range paths {
		scope[p] = true
	}
	return &analysis.Analyzer{
		Name: "floatcmp",
		Doc:  "ban direct ==/!= on floating-point values in numeric packages",
		Run: func(pass *analysis.Pass) error {
			if !scope[pass.Pkg.Path()] {
				return nil
			}
			return run(pass)
		},
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo.Types[be.X].Type) && !isFloat(pass.TypesInfo.Types[be.Y].Type) {
				return true
			}
			pass.Reportf(be.OpPos, "direct %s on floating-point values; use a tolerance helper (stats.ApproxEqual/ApproxZero) or suppress with a reason", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
