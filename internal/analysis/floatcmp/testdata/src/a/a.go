package a

func eq(x, y float64) bool {
	return x == y // want `direct == on floating-point values`
}

func neq(x, y float32) bool {
	return x != y // want `direct != on floating-point values`
}

func zeroGuard(x float64) bool {
	return x == 0 // want `direct == on floating-point values`
}

type meters float64

func named(a, b meters) bool {
	return a == b // want `direct == on floating-point values`
}

// Negative: integer equality is fine.
func ints(a, b int) bool { return a == b }

// Negative: ordering comparisons carry no exactness trap.
func less(x, y float64) bool { return x < y }

// Negative: a suppression with a reason silences the line below it.
func sentinel(x float64) bool {
	//emsim:ignore floatcmp zero is an exact sentinel written by Reset, never computed
	return x == 0
}

// A reason-less suppression is itself reported and suppresses nothing.
func badSuppression(x float64) bool {
	//emsim:ignore floatcmp // want `missing its required reason`
	return x == 0 // want `direct == on floating-point values`
}
