// Package b is out of the analyzer's scope in TestScope: its float
// comparison must produce no finding.
package b

func eq(x, y float64) bool {
	return x == y
}
