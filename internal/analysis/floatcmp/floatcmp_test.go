package floatcmp_test

import (
	"path/filepath"
	"testing"

	"emsim/internal/analysis/analysistest"
	"emsim/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), floatcmp.New("a"))
}

// TestScope verifies the analyzer is inert outside its package set:
// fixture b contains a bare float == with no want comment, so the run
// only passes if the out-of-scope package yields zero findings.
func TestScope(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "b"), floatcmp.New("a"))
}
