package stats

import "math"

// DefaultRelTol is the relative tolerance used by the package's own
// degenerate-case guards: comfortably above the rounding error a few
// thousand float64 accumulations produce, far below any difference the
// leakage statistics would ever call signal.
const DefaultRelTol = 1e-9

// ApproxEqual reports whether a and b agree to within rel relative
// tolerance, scaled by the larger magnitude. It is the comparison the
// floatcmp analyzer asks for in place of ==: exact float equality in
// this module's arithmetic (Equ. 5/8/9 accumulations) is almost always
// a rounding-noise bug, WelchT's degenerate-variance case being the
// canonical example.
func ApproxEqual(a, b, rel float64) bool {
	//emsim:ignore floatcmp the tolerance helper itself needs the exact short-circuit for ties and infinities
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // equal infinities took the short-circuit above
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

// ApproxZero reports whether |x| <= tol. Use it for guards against
// dividing by a computed quantity that may have decayed to rounding
// noise; pass a tolerance scaled to the quantity's natural magnitude.
func ApproxZero(x, tol float64) bool {
	return math.Abs(x) <= tol
}
