package stats

import (
	"math"
	"strings"
	"testing"
)

// TestTVLATraceEdgeCases pins the group-shape contract of TVLATrace:
// unequal group sizes are legal (Welch's test does not assume balance),
// a single-trace group is rejected with a diagnostic naming both sizes,
// ragged traces are rejected, and zero-width traces yield an empty —
// not nil-with-error — t trace.
func TestTVLATraceEdgeCases(t *testing.T) {
	cases := []struct {
		name          string
		fixed, random [][]float64
		wantErr       string // substring, "" for success
		check         func(*testing.T, []float64)
	}{
		{
			name:   "unequal group sizes are supported",
			fixed:  [][]float64{{0, 1}, {0, 1}},
			random: [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}},
			check: func(t *testing.T, tv []float64) {
				if !math.IsInf(tv[0], -1) {
					t.Errorf("t[0] = %v, want -Inf (constant 0 vs constant 1)", tv[0])
				}
				if tv[1] != 0 {
					t.Errorf("t[1] = %v, want 0 (both groups constant 1)", tv[1])
				}
			},
		},
		{
			name:    "single fixed trace rejected",
			fixed:   [][]float64{{1, 2}},
			random:  [][]float64{{1, 2}, {1, 2}, {1, 2}},
			wantErr: ">= 2 traces per group (1, 3)",
		},
		{
			name:    "single random trace rejected",
			fixed:   [][]float64{{1, 2}, {1, 2}},
			random:  [][]float64{{1, 2}},
			wantErr: ">= 2 traces per group (2, 1)",
		},
		{
			name:    "empty groups rejected",
			fixed:   nil,
			random:  nil,
			wantErr: ">= 2 traces per group (0, 0)",
		},
		{
			name:    "ragged fixed trace rejected",
			fixed:   [][]float64{{1, 2}, {1}},
			random:  [][]float64{{1, 2}, {1, 2}},
			wantErr: "ragged fixed trace",
		},
		{
			name:    "ragged random trace rejected",
			fixed:   [][]float64{{1, 2}, {1, 2}},
			random:  [][]float64{{1, 2}, {1, 2, 3}},
			wantErr: "ragged random trace",
		},
		{
			name:   "zero-width traces yield an empty t trace",
			fixed:  [][]float64{{}, {}},
			random: [][]float64{{}, {}},
			check: func(t *testing.T, tv []float64) {
				if len(tv) != 0 {
					t.Errorf("t trace has %d samples, want 0", len(tv))
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tv, err := TVLATrace(tc.fixed, tc.random)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, tv)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, tv)
		})
	}
}

// TestWelchTNaNPropagates pins that a NaN sample yields a NaN statistic
// (rather than a panic, an error, or a spurious finite value): NaN fails
// the negligible-standard-error comparison, so the division runs and
// carries the NaN through.
func TestWelchTNaNPropagates(t *testing.T) {
	a := []float64{1, math.NaN(), 1}
	b := []float64{2, 2, 2}
	tv, _, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(tv) {
		t.Errorf("WelchT with a NaN sample = %v, want NaN", tv)
	}
}

// TestTVLALeakyPointsBoundary pins that the 4.5 line is exclusive and
// that NaN values are never flagged.
func TestTVLALeakyPointsBoundary(t *testing.T) {
	got := TVLALeakyPoints([]float64{math.NaN(), 5, -5, TVLAThreshold, math.Inf(1)})
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("leaky points %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("leaky points %v, want %v", got, want)
		}
	}
}
