package stats

import (
	"fmt"
	"math"
)

// WelchT computes Welch's t statistic for two independent samples with
// (possibly) unequal variances — the statistic TVLA is built on. It also
// returns the Welch–Satterthwaite degrees of freedom.
func WelchT(a, b []float64) (t float64, df float64, err error) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0, fmt.Errorf("stats: WelchT needs >= 2 samples per group (%d, %d)", len(a), len(b))
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	t, df = welchFromMoments(ma, va, float64(len(a)), mb, vb, float64(len(b)))
	return t, df, nil
}

// welchFromMoments is the Welch formula on already-computed group
// moments — the shared core of the two-pass WelchT above and the
// streaming WelchAccumulator snapshot.
func welchFromMoments(ma, va, na, mb, vb, nb float64) (t, df float64) {
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	// A numerically-constant group can carry a variance of a few ulp², so
	// an exact se == 0 test misses it and the division below manufactures
	// a sizable t from pure rounding noise (three 0.1s vs four 0.1s have
	// means one ulp apart and se ~1e-17, giving t ≈ 1.4 where the answer
	// is 0). Treat the standard error as zero whenever it is negligible
	// against the means' magnitude.
	if se <= 1e-12*math.Max(math.Abs(ma), math.Abs(mb)) {
		if ApproxEqual(ma, mb, DefaultRelTol) {
			return 0, na + nb - 2
		}
		return math.Inf(sign(ma - mb)), na + nb - 2
	}
	t = (ma - mb) / se
	num := (sa + sb) * (sa + sb)
	den := sa*sa/(na-1) + sb*sb/(nb-1)
	df = na + nb - 2
	if den > 0 {
		df = num / den
	}
	return t, df
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// TVLAThreshold is the conventional |t| > 4.5 pass/fail line of the Test
// Vector Leakage Assessment methodology.
const TVLAThreshold = 4.5

// TVLATrace computes the per-sample Welch t statistic between two groups
// of traces (fixed vs random in the TVLA protocol). Each trace is a slice
// of samples; all traces must share a length. The result has one t value
// per sample position.
func TVLATrace(fixed, random [][]float64) ([]float64, error) {
	if len(fixed) < 2 || len(random) < 2 {
		return nil, fmt.Errorf("stats: TVLA needs >= 2 traces per group (%d, %d)", len(fixed), len(random))
	}
	width := len(fixed[0])
	for _, tr := range fixed {
		if len(tr) != width {
			return nil, fmt.Errorf("stats: ragged fixed trace")
		}
	}
	for _, tr := range random {
		if len(tr) != width {
			return nil, fmt.Errorf("stats: ragged random trace")
		}
	}
	out := make([]float64, width)
	fcol := make([]float64, len(fixed))
	rcol := make([]float64, len(random))
	for s := 0; s < width; s++ {
		for i, tr := range fixed {
			fcol[i] = tr[s]
		}
		for i, tr := range random {
			rcol[i] = tr[s]
		}
		t, _, err := WelchT(fcol, rcol)
		if err != nil {
			return nil, err
		}
		out[s] = t
	}
	return out, nil
}

// TVLALeakyPoints returns the indices where |t| exceeds the TVLA
// threshold.
func TVLALeakyPoints(t []float64) []int {
	var out []int
	for i, v := range t {
		if math.Abs(v) > TVLAThreshold {
			out = append(out, i)
		}
	}
	return out
}
