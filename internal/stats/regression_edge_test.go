package stats

import (
	"math"
	"testing"
)

// TestStepwiseEdgeCases pins StepwiseRegression's behavior on the
// degenerate inputs the training pipeline can produce: collinear
// transition-bit columns (many bits toggle together), all-zero columns
// (bits that never switch in the training set), more candidates than
// samples, and F statistics that sit exactly on the entry threshold.
// Each case uses a hand-computable design built from the mutually
// orthogonal, zero-mean vectors
//
//	c0 = (1, 1, -1, -1)   c1 = (1, -1, 1, -1)   c2 = (1, -1, -1, 1)
//
// so the RSS reductions, F statistics, selected sets and Dropped counts
// are exact small integers, not properties of a random draw.
func TestStepwiseEdgeCases(t *testing.T) {
	c0 := []float64{1, 1, -1, -1}
	c1 := []float64{1, -1, 1, -1}
	c2 := []float64{1, -1, -1, 1}
	zero := []float64{0, 0, 0, 0}

	// design assembles rows from candidate columns; target mixes the
	// basis vectors with the given weights.
	design := func(cols ...[]float64) [][]float64 {
		x := make([][]float64, 4)
		for i := range x {
			row := make([]float64, len(cols))
			for j, c := range cols {
				row[j] = c[i]
			}
			x[i] = row
		}
		return x
	}
	target := func(w0, w1, w2 float64) []float64 {
		y := make([]float64, 4)
		for i := range y {
			y[i] = w0*c0[i] + w1*c1[i] + w2*c2[i]
		}
		return y
	}

	cases := []struct {
		name         string
		x            [][]float64
		y            []float64
		opts         StepwiseOptions
		wantSelected []int
		wantDropped  int
	}{
		{
			// Column 1 duplicates column 0. After column 0 enters (F≈200
			// at df2=2), the duplicate orthogonalizes to the zero vector
			// and must be skipped by the collinearity test; column 2 then
			// completes a perfect fit.
			name:         "collinear duplicate skipped",
			x:            design(c0, c0, c1),
			y:            target(100, 10, 0),
			wantSelected: []int{0, 2},
			wantDropped:  1,
		},
		{
			// An all-zero predictor has colNorm2 = 0; the tolerance test
			// nv2 <= 1e-12·colNorm2 reduces to 0 <= 0 and skips it, so
			// only the real column can enter.
			name:         "all-zero predictor never selected",
			x:            design(zero, c0),
			y:            target(5, 0, 0),
			wantSelected: []int{1},
			wantDropped:  1,
		},
		{
			// Every candidate is zero: selection finds nothing and the
			// result degrades to the intercept-only model.
			name:         "all candidates zero: intercept-only",
			x:            design(zero, zero),
			y:            []float64{1, 2, 3, 4},
			wantSelected: []int{},
			wantDropped:  2,
		},
		{
			// p = 6 candidates for n = 4 samples: the selector may use at
			// most n-2 = 2 columns (one residual degree of freedom), and
			// the duplicate/zero columns must not confuse it. Both real
			// signals clear their critical values (F≈22 at df2=2, then
			// F=900 at df2=1).
			name:         "p greater than n clamps to n-2",
			x:            design(c0, c1, c2, c0, zero, c1),
			y:            target(100, 30, 1),
			wantSelected: []int{0, 1},
			wantDropped:  4,
		},
		{
			// Threshold boundary, permissive side. The second candidate's
			// F statistic is exactly 1 (Δ=4, denom=4 — all integers, so no
			// rounding). FEnter = 0.9/161.4 puts the df2=1 critical value
			// at 0.9: F ≥ crit, the column enters.
			name:         "F at threshold enters when crit is below",
			x:            design(c0, c1),
			y:            target(100, 1, 1), // the c2 part is irreducible noise
			opts:         StepwiseOptions{FEnter: 0.9 / 161.4},
			wantSelected: []int{0, 1},
			wantDropped:  0,
		},
		{
			// Same data, strict side: crit = 1.1 > F = 1 rejects the
			// second column. The flip between this case and the previous
			// one pins the comparison direction at the boundary.
			name:         "F at threshold stops when crit is above",
			x:            design(c0, c1),
			y:            target(100, 1, 1),
			opts:         StepwiseOptions{FEnter: 1.1 / 161.4},
			wantSelected: []int{0},
			wantDropped:  1,
		},
		{
			// Default threshold (161.4 at df2=1) likewise rejects F=1.
			name:         "F at threshold stops at default crit",
			x:            design(c0, c1),
			y:            target(100, 1, 1),
			wantSelected: []int{0},
			wantDropped:  1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := StepwiseRegression(tc.x, tc.y, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(res.Selected, tc.wantSelected) {
				t.Errorf("Selected = %v, want %v", res.Selected, tc.wantSelected)
			}
			if res.Dropped != tc.wantDropped {
				t.Errorf("Dropped = %d, want %d", res.Dropped, tc.wantDropped)
			}
			if res.Dropped != len(tc.x[0])-len(res.Selected) {
				t.Errorf("Dropped = %d inconsistent with %d candidates and %d selected",
					res.Dropped, len(tc.x[0]), len(res.Selected))
			}
			if res.Model == nil {
				t.Fatal("nil Model in result")
			}
			if len(res.Model.Coef) != len(res.Selected) {
				t.Errorf("model has %d coefficients for %d selected columns",
					len(res.Model.Coef), len(res.Selected))
			}
		})
	}

	t.Run("intercept-only model is the mean", func(t *testing.T) {
		y := []float64{1, 2, 3, 4}
		res, err := StepwiseRegression(design(zero, zero), y, StepwiseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Model.Intercept; math.Abs(got-2.5) > 1e-12 {
			t.Errorf("intercept = %g, want 2.5", got)
		}
		if got := res.PredictFull([]float64{7, 9}); math.Abs(got-2.5) > 1e-12 {
			t.Errorf("PredictFull = %g, want the mean 2.5", got)
		}
		if got, want := res.Model.RSS, interceptOnlyRSS(y); math.Abs(got-want) > 1e-12 {
			t.Errorf("RSS = %g, want %g", got, want)
		}
	})
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
