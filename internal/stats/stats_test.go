package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDescriptiveStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if got := Median(xs); got != 4.5 {
		t.Errorf("Median = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v", got)
	}
	min, max := MinMax(xs)
	if min != 2 || max != 9 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-input conventions broken")
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	rho, err := Pearson(a, b)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("perfect correlation = %v (%v)", rho, err)
	}
	c := []float64{10, 8, 6, 4, 2}
	rho, _ = Pearson(a, c)
	if math.Abs(rho+1) > 1e-12 {
		t.Errorf("anticorrelation = %v", rho)
	}
	if _, err := Pearson(a, []float64{1, 1, 1, 1, 1}); err == nil {
		t.Error("constant series accepted")
	}
	if _, err := Pearson(a, b[:3]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestLinearRegressionRecovery(t *testing.T) {
	// y = 3 + 2x1 - x2, exactly.
	r := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x1, x2 := r.NormFloat64(), r.NormFloat64()
		x = append(x, []float64{x1, x2})
		y = append(y, 3+2*x1-x2)
	}
	res, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Intercept-3) > 1e-9 ||
		math.Abs(res.Coef[0]-2) > 1e-9 ||
		math.Abs(res.Coef[1]+1) > 1e-9 {
		t.Errorf("fit = %v + %v", res.Intercept, res.Coef)
	}
	if res.R2 < 0.999999 {
		t.Errorf("R2 = %v on exact data", res.R2)
	}
	if got := res.Predict([]float64{1, 1}); math.Abs(got-4) > 1e-9 {
		t.Errorf("Predict = %v, want 4", got)
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x1 := r.NormFloat64()
		x = append(x, []float64{x1})
		y = append(y, 5+0.5*x1+0.05*r.NormFloat64())
	}
	res, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Intercept-5) > 0.02 || math.Abs(res.Coef[0]-0.5) > 0.02 {
		t.Errorf("noisy fit = %v + %v", res.Intercept, res.Coef)
	}
	if res.R2 < 0.9 {
		t.Errorf("R2 = %v", res.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := LinearRegression([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearRegression([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestStepwiseSelectsTrueSupport(t *testing.T) {
	// 20 candidate features; only 3 matter. Stepwise must find exactly
	// those and drop the rest (the paper's >65% reduction of T).
	r := rand.New(rand.NewSource(3))
	n, p := 400, 20
	true1, true2, true3 := 4, 11, 17
	var x [][]float64
	var y []float64
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		x = append(x, row)
		y = append(y, 1+3*row[true1]-2*row[true2]+0.8*row[true3]+0.01*r.NormFloat64())
	}
	res, err := StepwiseRegression(x, y, StepwiseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{true1: true, true2: true, true3: true}
	got := map[int]bool{}
	for _, c := range res.Selected {
		got[c] = true
	}
	for c := range want {
		if !got[c] {
			t.Errorf("true predictor %d not selected (got %v)", c, res.Selected)
		}
	}
	if len(res.Selected) > 6 {
		t.Errorf("selected %d predictors, want close to 3", len(res.Selected))
	}
	if res.Dropped < p-6 {
		t.Errorf("dropped only %d of %d candidates", res.Dropped, p)
	}
	// Prediction quality on the full feature vector.
	row := make([]float64, p)
	for j := range row {
		row[j] = r.NormFloat64()
	}
	want1 := 1 + 3*row[true1] - 2*row[true2] + 0.8*row[true3]
	if gotv := res.PredictFull(row); math.Abs(gotv-want1) > 0.1 {
		t.Errorf("PredictFull = %v, want %v", gotv, want1)
	}
}

func TestStepwiseNoSignal(t *testing.T) {
	// Pure noise: nothing should pass the F test (allow a rare straggler).
	r := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		row := make([]float64, 10)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		x = append(x, row)
		y = append(y, r.NormFloat64())
	}
	res, err := StepwiseRegression(x, y, StepwiseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) > 2 {
		t.Errorf("selected %d predictors from pure noise", len(res.Selected))
	}
}

func TestStepwiseCollinearColumns(t *testing.T) {
	// Two identical informative columns: only one may enter.
	r := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		v := r.NormFloat64()
		noise := r.NormFloat64()
		x = append(x, []float64{v, v, noise})
		y = append(y, 2*v)
	}
	res, err := StepwiseRegression(x, y, StepwiseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, c := range res.Selected {
		if c == 0 || c == 1 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("selected %d of the duplicate columns, want exactly 1 (%v)", count, res.Selected)
	}
}

func TestStepwiseMaxPredictors(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		row := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		x = append(x, row)
		y = append(y, row[0]+row[1]+row[2])
	}
	res, err := StepwiseRegression(x, y, StepwiseOptions{MaxPredictors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) > 2 {
		t.Errorf("MaxPredictors not honored: %v", res.Selected)
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Classic example: clearly different means.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 24.3}
	tstat, df, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Reference values computed independently with the Welch formulas.
	if math.Abs(tstat+2.8472) > 0.001 {
		t.Errorf("t = %v, want about -2.8472", tstat)
	}
	if math.Abs(df-27.885) > 0.01 {
		t.Errorf("df = %v, want about 27.885", df)
	}
}

func TestWelchTIdenticalGroups(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	tstat, _, err := WelchT(a, a)
	if err != nil || tstat != 0 {
		t.Errorf("t = %v (%v), want 0", tstat, err)
	}
	if _, _, err := WelchT([]float64{1}, a); err == nil {
		t.Error("tiny group accepted")
	}
	// Zero variance, different means: infinite t.
	tstat, _, err = WelchT([]float64{5, 5, 5}, []float64{1, 1, 1})
	if err != nil || !math.IsInf(tstat, 1) {
		t.Errorf("degenerate t = %v (%v)", tstat, err)
	}
}

func TestWelchTConstantGroupsRoundingNoise(t *testing.T) {
	// Regression: two groups of identical 0.1 values, differing only in
	// length, have means one ulp apart and a variance of a few ulp². The
	// old exact se == 0 guard missed that and reported t ≈ 1.4 from pure
	// rounding noise; the answer is 0.
	a := []float64{0.1, 0.1, 0.1}
	b := []float64{0.1, 0.1, 0.1, 0.1}
	tstat, df, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tstat != 0 {
		t.Errorf("t = %v for numerically-constant equal groups, want 0", tstat)
	}
	if df != 5 {
		t.Errorf("df = %v, want pooled 5", df)
	}
	// The same guard must still call genuinely different constants apart.
	tstat, _, err = WelchT([]float64{0.1, 0.1, 0.1}, []float64{0.2, 0.2, 0.2, 0.2})
	if err != nil || !math.IsInf(tstat, -1) {
		t.Errorf("t = %v (%v) for distinct constant groups, want -Inf", tstat, err)
	}
}

func TestApproxHelpers(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, DefaultRelTol) {
		t.Error("values one part in 1e12 apart should compare equal at 1e-9")
	}
	if ApproxEqual(1.0, 1.0001, DefaultRelTol) {
		t.Error("values one part in 1e4 apart should not compare equal at 1e-9")
	}
	inf := math.Inf(1)
	if !ApproxEqual(inf, inf, DefaultRelTol) {
		t.Error("equal infinities should compare equal")
	}
	if ApproxEqual(inf, -inf, DefaultRelTol) {
		t.Error("opposite infinities should not compare equal")
	}
	if !ApproxZero(1e-15, 1e-12) || ApproxZero(1e-9, 1e-12) {
		t.Error("ApproxZero tolerance bounds wrong")
	}
}

func TestTVLATraceDetectsLeak(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	width := 50
	leakAt := 17
	var fixed, random [][]float64
	for i := 0; i < 200; i++ {
		f := make([]float64, width)
		g := make([]float64, width)
		for s := 0; s < width; s++ {
			f[s] = r.NormFloat64()
			g[s] = r.NormFloat64()
		}
		f[leakAt] += 2.0 // the "fixed" group leaks here
		fixed = append(fixed, f)
		random = append(random, g)
	}
	tt, err := TVLATrace(fixed, random)
	if err != nil {
		t.Fatal(err)
	}
	leaks := TVLALeakyPoints(tt)
	found := false
	for _, i := range leaks {
		if i == leakAt {
			found = true
		}
	}
	if !found {
		t.Errorf("leak at %d not detected; leaks = %v", leakAt, leaks)
	}
	if len(leaks) > 5 {
		t.Errorf("too many false positives: %v", leaks)
	}
}

func TestTVLATraceErrors(t *testing.T) {
	if _, err := TVLATrace(nil, nil); err == nil {
		t.Error("empty groups accepted")
	}
	f := [][]float64{{1, 2}, {3, 4}}
	bad := [][]float64{{1, 2}, {3}}
	if _, err := TVLATrace(f, bad); err == nil {
		t.Error("ragged traces accepted")
	}
}

func TestHierarchicalClusterTwoBlobs(t *testing.T) {
	// Items 0-2 are mutually close, 3-5 are mutually close, blobs far.
	n := 6
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			same := (i < 3) == (j < 3)
			if same {
				dist[i][j] = 0.1
			} else {
				dist[i][j] = 1.0
			}
		}
	}
	for _, link := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage} {
		dg, err := HierarchicalCluster(dist, link)
		if err != nil {
			t.Fatal(err)
		}
		labels, err := dg.Cut(2)
		if err != nil {
			t.Fatal(err)
		}
		if labels[0] != labels[1] || labels[1] != labels[2] {
			t.Errorf("linkage %v: first blob split: %v", link, labels)
		}
		if labels[3] != labels[4] || labels[4] != labels[5] {
			t.Errorf("linkage %v: second blob split: %v", link, labels)
		}
		if labels[0] == labels[3] {
			t.Errorf("linkage %v: blobs merged: %v", link, labels)
		}
	}
}

func TestDendrogramCutBounds(t *testing.T) {
	dist := [][]float64{{0, 1}, {1, 0}}
	dg, err := HierarchicalCluster(dist, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dg.Cut(0); err == nil {
		t.Error("Cut(0) accepted")
	}
	if _, err := dg.Cut(3); err == nil {
		t.Error("Cut(3) on 2 items accepted")
	}
	l1, _ := dg.Cut(1)
	if l1[0] != 0 || l1[1] != 0 {
		t.Errorf("Cut(1) = %v", l1)
	}
	l2, _ := dg.Cut(2)
	if l2[0] == l2[1] {
		t.Errorf("Cut(2) = %v", l2)
	}
	if got := dg.MergeDistances(); len(got) != 1 || got[0] != 1 {
		t.Errorf("MergeDistances = %v", got)
	}
}

func TestClusterPermutationInvariance(t *testing.T) {
	// Property: permuting items permutes labels consistently.
	r := rand.New(rand.NewSource(8))
	f := func() bool {
		n := 8
		// Two well-separated blobs of random sizes.
		blob := make([]int, n)
		for i := range blob {
			blob[i] = r.Intn(2)
		}
		blob[0], blob[1] = 0, 1 // ensure both blobs exist
		dist := make([][]float64, n)
		for i := range dist {
			dist[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := 1.0
				if blob[i] == blob[j] {
					d = 0.05 + 0.01*r.Float64()
				}
				dist[i][j], dist[j][i] = d, d
			}
		}
		dg, err := HierarchicalCluster(dist, AverageLinkage)
		if err != nil {
			return false
		}
		labels, err := dg.Cut(2)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (blob[i] == blob[j]) != (labels[i] == labels[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDistanceMatrixFromSeries(t *testing.T) {
	series := [][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8}, // rho=1 with first -> distance 0
		{4, 3, 2, 1}, // rho=-1 -> distance 2
		{5, 5, 5, 5}, // constant
		{5, 5, 5, 5}, // identical constant
	}
	d, err := DistanceMatrixFromSeries(series)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0][1]) > 1e-9 {
		t.Errorf("d[0][1] = %v, want 0", d[0][1])
	}
	if math.Abs(d[0][2]-2) > 1e-9 {
		t.Errorf("d[0][2] = %v, want 2", d[0][2])
	}
	if d[0][3] != 2 {
		t.Errorf("constant-vs-varying distance = %v, want 2", d[0][3])
	}
	if d[3][4] != 0 {
		t.Errorf("identical constants distance = %v, want 0", d[3][4])
	}
	if d[1][0] != d[0][1] {
		t.Error("matrix not symmetric")
	}
	if _, err := DistanceMatrixFromSeries(nil); err == nil {
		t.Error("empty series accepted")
	}
}

func TestHierarchicalClusterErrors(t *testing.T) {
	if _, err := HierarchicalCluster(nil, AverageLinkage); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := HierarchicalCluster([][]float64{{0, 1}}, AverageLinkage); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func BenchmarkStepwise96Features(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	n, p := 500, 96
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		x[i] = row
		y[i] = 2*row[3] - row[40] + 0.5*row[77] + 0.05*r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := StepwiseRegression(x, y, StepwiseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWelchT(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	a := make([]float64, 1000)
	c := make([]float64, 1000)
	for i := range a {
		a[i] = r.NormFloat64()
		c[i] = r.NormFloat64() + 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := WelchT(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStepwiseMatchesFullOLSWhenUnconstrained: with a permissive F
// threshold and no cap, stepwise over a well-conditioned full-signal
// problem must converge to (essentially) the full OLS fit.
func TestStepwiseMatchesFullOLSWhenUnconstrained(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	n, p := 300, 6
	x := make([][]float64, n)
	y := make([]float64, n)
	coef := []float64{2, -1, 0.5, 3, -2.5, 1.5}
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		s := 0.5
		for j := range row {
			row[j] = r.NormFloat64()
			s += coef[j] * row[j]
		}
		x[i] = row
		y[i] = s + 0.01*r.NormFloat64()
	}
	full, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := StepwiseRegression(x, y, StepwiseOptions{FEnter: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Selected) != p {
		t.Fatalf("stepwise selected %d of %d strong predictors", len(sw.Selected), p)
	}
	// Compare predictions on fresh points.
	for trial := 0; trial < 20; trial++ {
		row := make([]float64, p)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		a := full.Predict(row)
		b := sw.PredictFull(row)
		if math.Abs(a-b) > 1e-6 {
			t.Fatalf("stepwise (%v) and OLS (%v) disagree", b, a)
		}
	}
}

// TestWelchTSymmetry: swapping the groups negates t.
func TestWelchTSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	a := make([]float64, 30)
	b := make([]float64, 25)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	for i := range b {
		b[i] = 1 + r.NormFloat64()
	}
	t1, df1, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	t2, df2, err := WelchT(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1+t2) > 1e-12 || math.Abs(df1-df2) > 1e-12 {
		t.Errorf("asymmetric: t %v/%v df %v/%v", t1, t2, df1, df2)
	}
}

// TestClusteringSingletonAndFull covers cut extremes for a bigger set.
func TestClusteringCutExtremes(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	n := 12
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := r.Float64() + 0.01
			dist[i][j], dist[j][i] = d, d
		}
	}
	dg, err := HierarchicalCluster(dist, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := dg.Cut(n)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range ln {
		seen[l] = true
	}
	if len(seen) != n {
		t.Errorf("Cut(n) gave %d clusters, want %d", len(seen), n)
	}
	if got := dg.MergeDistances(); len(got) != n-1 {
		t.Errorf("%d merges recorded, want %d", len(got), n-1)
	}
	// Merge distances under average linkage on random data need not be
	// monotone, but they must all be positive.
	for _, d := range dg.MergeDistances() {
		if d <= 0 {
			t.Errorf("non-positive merge distance %v", d)
		}
	}
}
