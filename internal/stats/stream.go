package stats

// One-pass streaming accumulators for the security-sweep analytics. The
// batch formulations buffer every trace and recompute the statistic from
// scratch at each point of a sweep — O(N²) work and O(N·samples)
// resident memory over a campaign of N traces. The accumulators below
// hold running moments instead (Welford for variances, the pairwise
// co-moment update for covariances), so a sweep becomes a single pass:
// each trace is folded in once and discarded, and a snapshot at any
// prefix costs O(state), never O(traces).
//
// Determinism contract: an accumulator's result is a pure function of
// the sequence of Add calls. Floating-point accumulation does not
// commute, so parallel producers must reduce index-ordered (the
// defend.Evaluate harness does); given the same feed order the snapshot
// is bit-for-bit reproducible.

import (
	"errors"
	"fmt"
	"math"
)

// errWelchGroup is the cold-path misuse error of WelchAccumulator.Add,
// predeclared so the hot path never allocates.
var errWelchGroup = errors.New("stats: WelchAccumulator group must be 0 or 1")

// WelchAccumulator holds per-sample-point running moments of two trace
// groups (TVLA's fixed and random populations) and can emit the
// per-point Welch t statistic at any prefix of the stream. Memory is
// O(sample points), independent of trace count.
//
// Variable-length traces follow the attacker's-view truncation rule of
// the batch analyses: the live width is the length of the shortest
// trace seen so far, and a shorter trace retroactively narrows it.
// Narrowing is exact, not approximate — per-column moments never mix
// columns, so the surviving columns carry the same values they would in
// a batch over the pre-truncated matrix.
type WelchAccumulator struct {
	width  int // live columns; -1 before the first trace
	maxLen int // longest trace ever seen
	n      [2]int
	mean   [2][]float64
	m2     [2][]float64
}

// NewWelchAccumulator returns an empty accumulator; the first Add sizes
// the per-column state.
func NewWelchAccumulator() *WelchAccumulator {
	return &WelchAccumulator{width: -1}
}

// Add folds one trace into the running moments of group 0 or 1 (a
// Welford mean/M2 update per surviving column).
//
//emsim:noalloc
func (w *WelchAccumulator) Add(group int, trace []float64) error {
	if group < 0 || group > 1 {
		return errWelchGroup
	}
	if w.width < 0 {
		//emsim:ignore noalloc one-time state sizing on the first trace; every later Add reuses it
		w.grow(len(trace))
	}
	if len(trace) < w.width {
		w.width = len(trace)
	}
	if len(trace) > w.maxLen {
		w.maxLen = len(trace)
	}
	w.n[group]++
	n := float64(w.n[group])
	mean, m2 := w.mean[group], w.m2[group]
	for c := 0; c < w.width; c++ {
		x := trace[c]
		d := x - mean[c]
		mean[c] += d / n
		m2[c] += d * (x - mean[c])
	}
	return nil
}

// grow allocates the per-column state for the first trace's width.
func (w *WelchAccumulator) grow(width int) {
	w.width = width
	w.maxLen = width
	for g := range w.mean {
		w.mean[g] = make([]float64, width)
		w.m2[g] = make([]float64, width)
	}
}

// Counts returns the number of traces folded into each group.
func (w *WelchAccumulator) Counts() (n0, n1 int) { return w.n[0], w.n[1] }

// Samples returns the live (post-truncation) column count, 0 before the
// first trace.
func (w *WelchAccumulator) Samples() int {
	if w.width < 0 {
		return 0
	}
	return w.width
}

// MaxSamples returns the length of the longest trace ever folded in;
// MaxSamples()-Samples() is the column count truncation has discarded.
func (w *WelchAccumulator) MaxSamples() int { return w.maxLen }

// TInto writes the per-column Welch t statistic of the current prefix
// into dst (reusing its capacity) and returns it. Both groups need at
// least two traces.
func (w *WelchAccumulator) TInto(dst []float64) ([]float64, error) {
	if w.n[0] < 2 || w.n[1] < 2 {
		return nil, fmt.Errorf("stats: WelchAccumulator needs >= 2 traces per group (%d, %d)", w.n[0], w.n[1])
	}
	width := w.Samples()
	if cap(dst) < width {
		dst = make([]float64, width)
	}
	dst = dst[:width]
	na, nb := float64(w.n[0]), float64(w.n[1])
	for c := 0; c < width; c++ {
		va := w.m2[0][c] / (na - 1)
		vb := w.m2[1][c] / (nb - 1)
		t, _ := welchFromMoments(w.mean[0][c], va, na, w.mean[1][c], vb, nb)
		dst[c] = t
	}
	return dst, nil
}

// CorrAccumulator holds the running Pearson state of a CPA attack: for
// every (candidate guess, trace column) pair it maintains the pairwise
// co-moment alongside per-column and per-guess Welford moments, so the
// per-guess peak |correlation| is available at any prefix. Memory is
// O(guesses × columns), independent of trace count.
//
// Truncation follows WelchAccumulator's rule: the live width shrinks to
// the shortest trace seen, exactly.
type CorrAccumulator struct {
	guesses int
	width   int // live columns; -1 before the first trace
	stride  int // allocated row length of c (the width at first Add)
	maxLen  int
	n       int

	meanX, m2x, firstX []float64 // per column
	variedX            []bool
	meanH, m2h, firstH []float64 // per guess
	variedH            []bool
	c                  []float64 // co-moments, c[g*stride+col]
	dx                 []float64 // scratch: per-column pre-update deviations
}

// NewCorrAccumulator returns an empty accumulator for the given number
// of candidate guesses; the first Add sizes the per-column state.
func NewCorrAccumulator(guesses int) *CorrAccumulator {
	return &CorrAccumulator{guesses: guesses, width: -1}
}

// errCorrHyp is the cold-path misuse error of CorrAccumulator.Add.
var errCorrHyp = errors.New("stats: CorrAccumulator hypothesis row does not match the guess count")

// Add folds one (trace, hypothesis-row) pair into the running sums.
// hyp[g] is candidate g's predicted leakage for this trace; its length
// must equal the accumulator's guess count.
//
//emsim:noalloc
func (a *CorrAccumulator) Add(trace, hyp []float64) error {
	if len(hyp) != a.guesses {
		return errCorrHyp
	}
	if a.width < 0 {
		//emsim:ignore noalloc one-time state sizing on the first trace; every later Add reuses it
		a.grow(len(trace))
		copy(a.firstX, trace)
		copy(a.firstH, hyp)
	}
	if len(trace) < a.width {
		a.width = len(trace)
	}
	if len(trace) > a.maxLen {
		a.maxLen = len(trace)
	}
	a.n++
	n := float64(a.n)
	for col := 0; col < a.width; col++ {
		x := trace[col]
		// A column is dead only when every value is bit-identical to the
		// first AND finite: a constant ±Inf column has NaN variance in the
		// two-pass formulation, which counts as "live, contributes nothing"
		// there, and the streaming side must agree.
		//emsim:ignore floatcmp exact-constant detection needs the bitwise comparison, not a tolerance
		if x != a.firstX[col] || math.IsInf(x, 0) {
			a.variedX[col] = true
		}
		d := x - a.meanX[col]
		a.meanX[col] += d / n
		a.m2x[col] += d * (x - a.meanX[col])
		a.dx[col] = d
	}
	for g := 0; g < a.guesses; g++ {
		h := hyp[g]
		// Same constant-finite rule as the column flags above.
		//emsim:ignore floatcmp exact-constant detection needs the bitwise comparison, not a tolerance
		if h != a.firstH[g] || math.IsInf(h, 0) {
			a.variedH[g] = true
		}
		d1 := h - a.meanH[g]
		a.meanH[g] += d1 / n
		d2 := h - a.meanH[g]
		a.m2h[g] += d1 * d2
		row := a.c[g*a.stride : g*a.stride+a.width]
		for col := range row {
			// Pairwise co-moment: C += (x - x̄_old)·(h - h̄_new).
			row[col] += a.dx[col] * d2
		}
	}
	return nil
}

// grow allocates the per-column and co-moment state for the first
// trace's width.
func (a *CorrAccumulator) grow(width int) {
	a.width = width
	a.stride = width
	a.maxLen = width
	a.meanX = make([]float64, width)
	a.m2x = make([]float64, width)
	a.firstX = make([]float64, width)
	a.variedX = make([]bool, width)
	a.dx = make([]float64, width)
	a.meanH = make([]float64, a.guesses)
	a.m2h = make([]float64, a.guesses)
	a.firstH = make([]float64, a.guesses)
	a.variedH = make([]bool, a.guesses)
	a.c = make([]float64, a.guesses*width)
}

// Traces returns the number of (trace, hypothesis) pairs folded in.
func (a *CorrAccumulator) Traces() int { return a.n }

// Guesses returns the candidate count fixed at construction.
func (a *CorrAccumulator) Guesses() int { return a.guesses }

// Samples returns the live (post-truncation) column count.
func (a *CorrAccumulator) Samples() int {
	if a.width < 0 {
		return 0
	}
	return a.width
}

// MaxSamples returns the length of the longest trace ever folded in.
func (a *CorrAccumulator) MaxSamples() int { return a.maxLen }

// LiveColumns counts columns whose values have varied — the columns a
// batch correlation would not skip as constant.
func (a *CorrAccumulator) LiveColumns() int {
	live := 0
	for col := 0; col < a.Samples(); col++ {
		if a.variedX[col] {
			live++
		}
	}
	return live
}

// LiveGuesses counts candidates whose predictions have varied.
func (a *CorrAccumulator) LiveGuesses() int {
	live := 0
	for _, v := range a.variedH {
		if v {
			live++
		}
	}
	return live
}

// PeaksInto writes, for every guess, the peak |Pearson correlation| over
// the live columns and the column index where it peaks (ties keep the
// lowest column; dead guesses and dead columns score zero, matching the
// batch CPA's constant-column rule). peak and at must have length
// Guesses(). Needs at least three traces.
func (a *CorrAccumulator) PeaksInto(peak []float64, at []int) error {
	if a.n < 3 {
		return fmt.Errorf("stats: CorrAccumulator needs >= 3 traces (have %d)", a.n)
	}
	if len(peak) != a.guesses || len(at) != a.guesses {
		return fmt.Errorf("stats: PeaksInto dst length %d/%d, want %d", len(peak), len(at), a.guesses)
	}
	width := a.Samples()
	for g := 0; g < a.guesses; g++ {
		peak[g], at[g] = 0, 0
		if !a.variedH[g] || !(a.m2h[g] > 0) {
			continue
		}
		row := a.c[g*a.stride : g*a.stride+width]
		for col := 0; col < width; col++ {
			if !a.variedX[col] || !(a.m2x[col] > 0) {
				continue
			}
			corr := math.Abs(row[col]) / math.Sqrt(a.m2x[col]*a.m2h[g])
			if corr > peak[g] {
				peak[g], at[g] = corr, col
			}
		}
	}
	return nil
}
