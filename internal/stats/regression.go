package stats

import (
	"fmt"
	"math"

	"emsim/internal/linalg"
)

// RegressionResult holds a fitted linear model y ≈ Intercept + X·Coef.
type RegressionResult struct {
	Intercept float64
	Coef      []float64 // one per predictor column
	// R2 is the coefficient of determination on the training data.
	R2 float64
	// RSS is the residual sum of squares.
	RSS float64
	// N and P are the sample and predictor counts.
	N, P int
}

// Predict evaluates the fitted model on one feature vector.
func (r *RegressionResult) Predict(x []float64) float64 {
	s := r.Intercept
	for j, c := range r.Coef {
		s += c * x[j]
	}
	return s
}

// LinearRegression fits y ≈ δ + X·c by ordinary least squares, the model
// form of Equ. 8 and Equ. 9 in the paper. X is given as rows of feature
// vectors; all rows must share y's length.
func LinearRegression(x [][]float64, y []float64) (*RegressionResult, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: regression needs matching nonempty X (%d) and y (%d)", n, len(y))
	}
	p := len(x[0])
	a := linalg.NewMatrix(n, p+1)
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("stats: ragged feature row %d", i)
		}
		a.Set(i, 0, 1) // intercept column
		for j, v := range row {
			a.Set(i, j+1, v)
		}
	}
	beta, err := linalg.LeastSquares(a, y)
	if err != nil {
		return nil, fmt.Errorf("stats: regression solve: %w", err)
	}
	res := &RegressionResult{Intercept: beta[0], Coef: beta[1:], N: n, P: p}

	ybar := Mean(y)
	var rss, tss float64
	for i, row := range x {
		e := y[i] - res.Predict(row)
		rss += e * e
		d := y[i] - ybar
		tss += d * d
	}
	res.RSS = rss
	if tss > 0 {
		res.R2 = 1 - rss/tss
	} else {
		res.R2 = 1 // constant target perfectly fit by intercept
	}
	return res, nil
}

// interceptOnlyRSS is the null model's residual sum of squares.
func interceptOnlyRSS(y []float64) float64 {
	m := Mean(y)
	s := 0.0
	for _, v := range y {
		d := v - m
		s += d * d
	}
	return s
}

// StepwiseResult describes a stepwise-selected linear model.
type StepwiseResult struct {
	// Selected lists the chosen predictor column indices, in selection
	// order.
	Selected []int
	// Model is the final fit over the selected columns (coefficients are
	// ordered like Selected).
	Model *RegressionResult
	// Dropped is the number of candidate predictors not selected — the
	// ">65% reduction of T" the paper reports for its processor.
	Dropped int
}

// PredictFull evaluates the model on a full-width feature vector (with all
// candidate columns present).
func (s *StepwiseResult) PredictFull(x []float64) float64 {
	v := s.Model.Intercept
	for k, c := range s.Selected {
		v += s.Model.Coef[k] * x[c]
	}
	return v
}

// fCriticalApprox returns an approximate critical value for an F(1, df2)
// test at the 5% level. For df2 ≥ 30 it is close to 4.0, rising for small
// samples; this matches the standard F tables well enough for variable
// selection purposes.
func fCriticalApprox(df2 int) float64 {
	switch {
	case df2 <= 1:
		return 161.4
	case df2 <= 2:
		return 18.5
	case df2 <= 3:
		return 10.1
	case df2 <= 4:
		return 7.7
	case df2 <= 5:
		return 6.6
	case df2 <= 7:
		return 5.6
	case df2 <= 10:
		return 4.96
	case df2 <= 15:
		return 4.54
	case df2 <= 20:
		return 4.35
	case df2 <= 30:
		return 4.17
	case df2 <= 60:
		return 4.00
	case df2 <= 120:
		return 3.92
	default:
		return 3.84
	}
}

// StepwiseOptions tunes StepwiseRegression.
type StepwiseOptions struct {
	// MaxPredictors caps how many columns may be selected (0 = no cap
	// beyond the degrees of freedom).
	MaxPredictors int
	// FEnter scales the F-to-enter threshold; 0 means 1.0 (the 5% level).
	FEnter float64
}

// StepwiseRegression performs forward stepwise selection with an
// F-to-enter test (§III-B): starting from the intercept-only model it
// repeatedly adds the candidate predictor with the largest F statistic, as
// long as that statistic exceeds the critical value. This is how the paper
// prunes the transition-bit vector T by more than 65% without losing
// accuracy.
//
// The implementation keeps every candidate column residualized against
// the selected set (incremental modified Gram-Schmidt): when a column
// enters the model, each remaining candidate is orthogonalized against
// it once, so a full selection pass costs O(n·p·k) rather than the
// O(n·p·k²) of re-orthogonalizing every candidate from scratch at every
// step. The scores are exactly the OLS residual-sum-of-squares
// reductions, and ties break toward the lowest column index, so the
// selection is deterministic.
func StepwiseRegression(x [][]float64, y []float64, opts StepwiseOptions) (*StepwiseResult, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: stepwise needs matching nonempty X (%d) and y (%d)", n, len(y))
	}
	p := len(x[0])
	maxSel := p
	if opts.MaxPredictors > 0 && opts.MaxPredictors < maxSel {
		maxSel = opts.MaxPredictors
	}
	if lim := n - 2; maxSel > lim {
		maxSel = lim // keep at least one residual degree of freedom
	}
	fScale := opts.FEnter
	//emsim:ignore floatcmp zero is the unset-option sentinel, written literally, never computed
	if fScale == 0 {
		fScale = 1
	}

	// The intercept is the first basis direction; the residual r tracks y
	// minus its projection onto the model so far, and vc[c] tracks each
	// candidate column minus its projection onto the same span. Both are
	// updated in place as columns enter the model.
	q0 := 1 / math.Sqrt(float64(n))
	r := append([]float64(nil), y...)
	g0 := 0.0
	for _, v := range r {
		g0 += v * q0
	}
	for i := range r {
		r[i] -= g0 * q0
	}
	rssCur := linalg.Dot(r, r)

	colNorm2 := make([]float64, p) // original norms, the collinearity yardstick
	vc := make([][]float64, p)
	vcNorm2 := make([]float64, p)
	for c := 0; c < p; c++ {
		v := make([]float64, n)
		for i, row := range x {
			if len(row) != p {
				return nil, fmt.Errorf("stats: ragged feature row %d", i)
			}
			v[i] = row[c]
		}
		colNorm2[c] = linalg.Dot(v, v)
		g := 0.0
		for _, e := range v {
			g += e * q0
		}
		for i := range v {
			v[i] -= g * q0
		}
		vc[c] = v
		vcNorm2[c] = linalg.Dot(v, v)
	}

	selected := []int{}
	inModel := make([]bool, p)
	for len(selected) < maxSel {
		df2 := n - len(selected) - 2 // residual dof after adding one more
		if df2 < 1 {
			break
		}
		crit := fCriticalApprox(df2) * fScale
		bestCol, bestDelta := -1, 0.0
		for c := 0; c < p; c++ {
			if inModel[c] {
				continue
			}
			// vcNorm2 is a sum of squares, so it is <= 0 only when exactly
			// zero — the tolerance test alone covers the all-zero column.
			if vcNorm2[c] <= 1e-12*colNorm2[c] {
				continue // (near-)collinear with the current model
			}
			g := linalg.Dot(vc[c], r)
			delta := g * g / vcNorm2[c]
			if delta > bestDelta {
				bestCol, bestDelta = c, delta
			}
		}
		if bestCol < 0 {
			break
		}
		denom := (rssCur - bestDelta) / float64(df2)
		if denom <= 0 {
			// Perfect fit: accept the column and stop.
			selected = append(selected, bestCol)
			break
		}
		if bestDelta/denom < crit {
			break
		}
		selected = append(selected, bestCol)
		inModel[bestCol] = true
		// The winner, normalized, is the next basis direction; fold it out
		// of the residual and every remaining candidate (modified
		// Gram-Schmidt step), then refresh the candidate norms.
		q := vc[bestCol]
		inv := 1 / math.Sqrt(vcNorm2[bestCol])
		for i := range q {
			q[i] *= inv
		}
		g := linalg.Dot(q, r)
		for i := range r {
			r[i] -= g * q[i]
		}
		rssCur -= bestDelta
		if rssCur < 0 {
			rssCur = 0
		}
		for c := 0; c < p; c++ {
			if inModel[c] || vcNorm2[c] <= 1e-12*colNorm2[c] {
				continue
			}
			v := vc[c]
			gc := linalg.Dot(q, v)
			for i := range v {
				v[i] -= gc * q[i]
			}
			vcNorm2[c] = linalg.Dot(v, v)
		}
	}

	var model *RegressionResult
	var err error
	if len(selected) == 0 {
		// Intercept-only model.
		model, err = LinearRegression(make([][]float64, n), y)
		if err != nil {
			// An all-empty X is a zero-predictor regression; fit manually.
			model = &RegressionResult{Intercept: Mean(y), Coef: nil, N: n, RSS: interceptOnlyRSS(y)}
			err = nil
		}
	} else {
		sub := make([][]float64, n)
		for i, row := range x {
			s := make([]float64, len(selected))
			for k, c := range selected {
				s[k] = row[c]
			}
			sub[i] = s
		}
		model, err = LinearRegression(sub, y)
		if err != nil {
			return nil, err
		}
	}
	return &StepwiseResult{Selected: selected, Model: model, Dropped: p - len(selected)}, nil
}
