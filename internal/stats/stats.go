// Package stats provides the statistical machinery of the paper's model
// building: ordinary least-squares regression with the F-test-driven
// stepwise variable selection of §III-B, Welch's t-test for the TVLA
// leakage metric (§VI-A), descriptive statistics, and the hierarchical
// agglomerative clustering used to derive Table I.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than
// two samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStd returns mean and sample standard deviation in one pass.
func MeanStd(xs []float64) (mean, std float64) {
	mean = Mean(xs)
	return mean, StdDev(xs)
}

// Median returns the median of xs (0 for empty input). xs is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// MinMax returns the extrema of xs; it panics on empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series, or an error when a series is degenerate (zero variance).
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 samples")
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	//emsim:ignore floatcmp exactly-zero variance marks a constant series; tiny nonzero variance is legitimate data
	if saa == 0 || sbb == 0 {
		return 0, fmt.Errorf("stats: zero-variance series")
	}
	return sab / math.Sqrt(saa*sbb), nil
}
