package stats

import (
	"fmt"
	"math"
	"sort"
)

// Linkage selects the inter-cluster distance update rule for hierarchical
// agglomerative clustering.
type Linkage int

// Supported linkage rules.
const (
	AverageLinkage Linkage = iota
	SingleLinkage
	CompleteLinkage
)

// Dendrogram records an agglomerative clustering run.
type Dendrogram struct {
	n      int
	merges []merge
}

type merge struct {
	a, b int     // cluster ids being merged (leaf ids are 0..n-1)
	id   int     // id of the merged cluster (n, n+1, ...)
	dist float64 // distance at which the merge happened
}

// HierarchicalCluster runs agglomerative clustering over n items given a
// symmetric distance matrix (dist[i][j] = dist[j][i], dist[i][i] = 0).
// The paper uses this with a cross-correlation distance to derive the
// seven instruction clusters of Table I.
func HierarchicalCluster(dist [][]float64, link Linkage) (*Dendrogram, error) {
	n := len(dist)
	if n == 0 {
		return nil, fmt.Errorf("stats: empty distance matrix")
	}
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("stats: distance matrix row %d has %d entries, want %d", i, len(dist[i]), n)
		}
	}
	// Active clusters: id -> member leaves.
	members := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		members[i] = []int{i}
	}
	// Current pairwise distances between active clusters.
	d := make(map[[2]int]float64)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d[key(i, j)] = dist[i][j]
		}
	}

	clusterDist := func(a, b []int) float64 {
		switch link {
		case SingleLinkage:
			best := math.Inf(1)
			for _, i := range a {
				for _, j := range b {
					if v := dist[i][j]; v < best {
						best = v
					}
				}
			}
			return best
		case CompleteLinkage:
			worst := math.Inf(-1)
			for _, i := range a {
				for _, j := range b {
					if v := dist[i][j]; v > worst {
						worst = v
					}
				}
			}
			return worst
		default: // average
			s := 0.0
			for _, i := range a {
				for _, j := range b {
					s += dist[i][j]
				}
			}
			return s / float64(len(a)*len(b))
		}
	}

	dg := &Dendrogram{n: n}
	nextID := n
	active := make([]int, 0, n)
	for i := 0; i < n; i++ {
		active = append(active, i)
	}
	for len(active) > 1 {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for x := 0; x < len(active); x++ {
			for y := x + 1; y < len(active); y++ {
				v := d[key(active[x], active[y])]
				if v < best {
					best, bi, bj = v, active[x], active[y]
				}
			}
		}
		merged := append(append([]int{}, members[bi]...), members[bj]...)
		dg.merges = append(dg.merges, merge{a: bi, b: bj, id: nextID, dist: best})
		// Deactivate bi/bj, activate merged cluster.
		na := active[:0]
		for _, id := range active {
			if id != bi && id != bj {
				na = append(na, id)
			}
		}
		active = append(na, nextID)
		members[nextID] = merged
		for _, id := range active[:len(active)-1] {
			d[key(id, nextID)] = clusterDist(members[id], merged)
		}
		delete(members, bi)
		delete(members, bj)
		nextID++
	}
	return dg, nil
}

// Cut returns a flat clustering with exactly k clusters by undoing the
// last k−1 merges. Each item is assigned a label in [0, k); labels are
// ordered by each cluster's smallest member index, so the output is
// deterministic.
func (dg *Dendrogram) Cut(k int) ([]int, error) {
	if k < 1 || k > dg.n {
		return nil, fmt.Errorf("stats: cut into %d clusters of %d items", k, dg.n)
	}
	// Apply the first n-k merges with a union-find.
	parent := make([]int, dg.n+len(dg.merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range dg.merges[:dg.n-k] {
		ra, rb := find(m.a), find(m.b)
		parent[ra] = m.id
		parent[rb] = m.id
		// m.id is its own root.
	}
	// Collect roots of the leaves.
	rootOf := make([]int, dg.n)
	rootSet := map[int][]int{}
	for i := 0; i < dg.n; i++ {
		r := find(i)
		rootOf[i] = r
		rootSet[r] = append(rootSet[r], i)
	}
	// Deterministic labels: order clusters by smallest member.
	type grp struct{ root, min int }
	var groups []grp
	for r, ms := range rootSet {
		min := ms[0]
		for _, m := range ms {
			if m < min {
				min = m
			}
		}
		groups = append(groups, grp{r, min})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].min < groups[j].min })
	label := map[int]int{}
	for i, g := range groups {
		label[g.root] = i
	}
	out := make([]int, dg.n)
	for i := 0; i < dg.n; i++ {
		out[i] = label[rootOf[i]]
	}
	return out, nil
}

// MergeDistances returns the distance of each merge in order — useful for
// choosing a cut (look for the largest jump).
func (dg *Dendrogram) MergeDistances() []float64 {
	out := make([]float64, len(dg.merges))
	for i, m := range dg.merges {
		out[i] = m.dist
	}
	return out
}

// CorrelationDistance converts a normalized cross-correlation in [-1, 1]
// into a distance in [0, 2] (1 − ρ), the metric the paper pairs with
// agglomerative clustering.
func CorrelationDistance(rho float64) float64 { return 1 - rho }

// DistanceMatrixFromSeries builds a symmetric correlation-distance matrix
// from a set of equal-length series. Degenerate (constant) series get the
// maximum distance to everything except other constant series that are
// identical.
func DistanceMatrixFromSeries(series [][]float64) ([][]float64, error) {
	n := len(series)
	if n == 0 {
		return nil, fmt.Errorf("stats: no series")
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rho, err := Pearson(series[i], series[j])
			var dist float64
			if err != nil {
				if equalSeries(series[i], series[j]) {
					dist = 0
				} else {
					dist = 2
				}
			} else {
				dist = CorrelationDistance(rho)
			}
			d[i][j], d[j][i] = dist, dist
		}
	}
	return d, nil
}

func equalSeries(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//emsim:ignore floatcmp bit-for-bit identity is the point: identical constant series get distance 0
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
