package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// streamTestTraces builds a deterministic group of traces on a dyadic
// grid (multiples of 0.25), so batch and streaming variance decisions
// can never diverge on borderline rounding.
func streamTestTraces(seed int64, n, width int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		tr := make([]float64, width)
		for c := range tr {
			tr[c] = float64(rng.Intn(65)-32) * 0.25
		}
		out[i] = tr
	}
	return out
}

// approxT compares t statistics: relative tolerance for real effects,
// with an absolute floor because streaming moments round differently
// from two-pass sums, so "exactly 0" in batch can be ~1e-16 streamed —
// and t is scale-free, so an absolute floor is meaningful.
func approxT(a, b float64) bool {
	return ApproxEqual(a, b, DefaultRelTol) || math.Abs(a-b) <= 1e-9
}

// TestWelchAccumulatorMatchesWelchT feeds interleaved traces into the
// accumulator and checks the snapshot at several prefixes against the
// two-pass TVLATrace over the same prefix.
func TestWelchAccumulatorMatchesWelchT(t *testing.T) {
	const width = 17
	fixed := streamTestTraces(1, 24, width)
	random := streamTestTraces(2, 24, width)
	w := NewWelchAccumulator()
	var snap []float64
	for i := 0; i < 24; i++ {
		if err := w.Add(0, fixed[i]); err != nil {
			t.Fatalf("Add fixed %d: %v", i, err)
		}
		if err := w.Add(1, random[i]); err != nil {
			t.Fatalf("Add random %d: %v", i, err)
		}
		g := i + 1
		if g < 2 || g%4 != 0 && g != 24 {
			continue
		}
		var err error
		snap, err = w.TInto(snap)
		if err != nil {
			t.Fatalf("TInto at %d: %v", g, err)
		}
		want, err := TVLATrace(fixed[:g], random[:g])
		if err != nil {
			t.Fatalf("TVLATrace at %d: %v", g, err)
		}
		for c := range want {
			if !approxT(snap[c], want[c]) {
				t.Fatalf("prefix %d sample %d: stream t=%v, batch t=%v", g, c, snap[c], want[c])
			}
		}
	}
	if n0, n1 := w.Counts(); n0 != 24 || n1 != 24 {
		t.Fatalf("Counts = (%d, %d), want (24, 24)", n0, n1)
	}
}

// TestWelchAccumulatorDegenerateColumns checks the constant-column rules
// survive streaming: equal constants give t=0, distinct constants ±Inf.
func TestWelchAccumulatorDegenerateColumns(t *testing.T) {
	w := NewWelchAccumulator()
	for i := 0; i < 3; i++ {
		if err := w.Add(0, []float64{1, 0, float64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Add(1, []float64{1, 2, float64(-i)}); err != nil {
			t.Fatal(err)
		}
	}
	tv, err := w.TInto(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tv[0] != 0 {
		t.Errorf("t[0] = %v, want 0 (both groups constant 1)", tv[0])
	}
	if !math.IsInf(tv[1], -1) {
		t.Errorf("t[1] = %v, want -Inf (constant 0 vs constant 2)", tv[1])
	}
	if math.IsInf(tv[2], 0) || math.IsNaN(tv[2]) {
		t.Errorf("t[2] = %v, want finite", tv[2])
	}
}

// TestWelchAccumulatorTruncation pins the shortest-trace-wins width rule:
// a shorter trace retroactively narrows the live width, and the surviving
// columns match a batch run over the pre-truncated matrix.
func TestWelchAccumulatorTruncation(t *testing.T) {
	fixed := streamTestTraces(3, 6, 10)
	random := streamTestTraces(4, 6, 10)
	random[3] = random[3][:7] // mid-stream shrink
	w := NewWelchAccumulator()
	for i := 0; i < 6; i++ {
		if err := w.Add(0, fixed[i]); err != nil {
			t.Fatal(err)
		}
		if err := w.Add(1, random[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Samples() != 7 {
		t.Fatalf("Samples = %d, want 7", w.Samples())
	}
	if w.MaxSamples() != 10 {
		t.Fatalf("MaxSamples = %d, want 10", w.MaxSamples())
	}
	got, err := w.TInto(nil)
	if err != nil {
		t.Fatal(err)
	}
	tf := make([][]float64, 6)
	tr := make([][]float64, 6)
	for i := 0; i < 6; i++ {
		tf[i] = fixed[i][:7]
		tr[i] = random[i][:7]
	}
	want, err := TVLATrace(tf, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream width %d, batch width %d", len(got), len(want))
	}
	for c := range want {
		if !approxT(got[c], want[c]) {
			t.Fatalf("sample %d: stream t=%v, batch t=%v", c, got[c], want[c])
		}
	}
}

// TestWelchAccumulatorErrors pins the misuse diagnostics.
func TestWelchAccumulatorErrors(t *testing.T) {
	w := NewWelchAccumulator()
	if err := w.Add(2, []float64{1}); err == nil || !strings.Contains(err.Error(), "group must be 0 or 1") {
		t.Errorf("bad group error = %v", err)
	}
	if err := w.Add(-1, []float64{1}); err == nil {
		t.Error("negative group accepted")
	}
	if _, err := w.TInto(nil); err == nil || !strings.Contains(err.Error(), ">= 2 traces per group (0, 0)") {
		t.Errorf("empty snapshot error = %v", err)
	}
	if err := w.Add(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(0, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.TInto(nil); err == nil || !strings.Contains(err.Error(), "(2, 0)") {
		t.Errorf("one-group snapshot error = %v", err)
	}
}

// pearsonPeak is a naive two-pass reference: peak |Pearson correlation|
// of hypothesis column g against every trace column, constant columns
// skipped, strict > so the lowest column wins ties.
func pearsonPeak(traces [][]float64, hyp []float64) (peak float64, at int) {
	n := len(traces)
	width := len(traces[0])
	mh := Mean(hyp)
	var sh float64
	for _, h := range hyp {
		sh += (h - mh) * (h - mh)
	}
	if sh == 0 {
		return 0, 0
	}
	for col := 0; col < width; col++ {
		mx, sx, sxy := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			mx += traces[i][col]
		}
		mx /= float64(n)
		for i := 0; i < n; i++ {
			dx := traces[i][col] - mx
			sx += dx * dx
			sxy += dx * (hyp[i] - mh)
		}
		if sx == 0 {
			continue
		}
		corr := math.Abs(sxy) / math.Sqrt(sx*sh)
		if corr > peak {
			peak, at = corr, col
		}
	}
	return peak, at
}

// TestCorrAccumulatorMatchesPearson checks PeaksInto against the
// two-pass reference at several prefixes, including a planted leak.
func TestCorrAccumulatorMatchesPearson(t *testing.T) {
	const guesses, width, n = 8, 12, 30
	traces := streamTestTraces(5, n, width)
	hyps := make([][]float64, n)
	rng := rand.New(rand.NewSource(6))
	for i := range hyps {
		h := make([]float64, guesses)
		for g := range h {
			h[g] = float64(rng.Intn(9))
		}
		// Plant guess 3's prediction into column 5 so a real peak exists.
		traces[i][5] = h[3] * 0.5
		hyps[i] = h
	}
	acc := NewCorrAccumulator(guesses)
	peak := make([]float64, guesses)
	at := make([]int, guesses)
	for i := 0; i < n; i++ {
		if err := acc.Add(traces[i], hyps[i]); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
		if i+1 < 3 || (i+1)%10 != 0 {
			continue
		}
		if err := acc.PeaksInto(peak, at); err != nil {
			t.Fatalf("PeaksInto at %d: %v", i+1, err)
		}
		hcol := make([]float64, i+1)
		for g := 0; g < guesses; g++ {
			for j := 0; j <= i; j++ {
				hcol[j] = hyps[j][g]
			}
			wantPeak, wantAt := pearsonPeak(traces[:i+1], hcol)
			if !ApproxEqual(peak[g], wantPeak, 1e-6) {
				t.Fatalf("prefix %d guess %d: stream peak %v, batch %v", i+1, g, peak[g], wantPeak)
			}
			if wantPeak > 0 && at[g] != wantAt {
				t.Fatalf("prefix %d guess %d: stream at %d, batch at %d", i+1, g, at[g], wantAt)
			}
		}
	}
	if err := acc.PeaksInto(peak, at); err != nil {
		t.Fatal(err)
	}
	if at[3] != 5 || peak[3] < 0.99 {
		t.Fatalf("planted leak: guess 3 peak %v at %d, want ~1 at 5", peak[3], at[3])
	}
	if acc.Traces() != n || acc.Guesses() != guesses {
		t.Fatalf("Traces/Guesses = %d/%d", acc.Traces(), acc.Guesses())
	}
}

// TestCorrAccumulatorConstantHandling pins the dead-column/dead-guess
// rules: constants score zero, and the live counts reflect variation.
func TestCorrAccumulatorConstantHandling(t *testing.T) {
	acc := NewCorrAccumulator(2)
	for i := 0; i < 4; i++ {
		// Column 0 constant, column 1 varies; guess 0 constant, guess 1
		// tracks column 1 exactly.
		v := float64(i)
		if err := acc.Add([]float64{7, v}, []float64{3, v}); err != nil {
			t.Fatal(err)
		}
	}
	if acc.LiveColumns() != 1 {
		t.Errorf("LiveColumns = %d, want 1", acc.LiveColumns())
	}
	if acc.LiveGuesses() != 1 {
		t.Errorf("LiveGuesses = %d, want 1", acc.LiveGuesses())
	}
	peak := make([]float64, 2)
	at := make([]int, 2)
	if err := acc.PeaksInto(peak, at); err != nil {
		t.Fatal(err)
	}
	if peak[0] != 0 {
		t.Errorf("constant guess peak = %v, want 0", peak[0])
	}
	if !ApproxEqual(peak[1], 1, DefaultRelTol) || at[1] != 1 {
		t.Errorf("tracking guess peak %v at %d, want 1 at 1", peak[1], at[1])
	}
}

// TestCorrAccumulatorTruncation mirrors the Welch truncation pin.
func TestCorrAccumulatorTruncation(t *testing.T) {
	acc := NewCorrAccumulator(1)
	traces := streamTestTraces(7, 5, 8)
	traces[2] = traces[2][:5]
	for i, tr := range traces {
		if err := acc.Add(tr, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if acc.Samples() != 5 || acc.MaxSamples() != 8 {
		t.Fatalf("Samples/MaxSamples = %d/%d, want 5/8", acc.Samples(), acc.MaxSamples())
	}
	peak := make([]float64, 1)
	at := make([]int, 1)
	if err := acc.PeaksInto(peak, at); err != nil {
		t.Fatal(err)
	}
	if at[0] >= 5 {
		t.Fatalf("peak column %d beyond the truncated width 5", at[0])
	}
}

// TestCorrAccumulatorErrors pins the misuse diagnostics.
func TestCorrAccumulatorErrors(t *testing.T) {
	acc := NewCorrAccumulator(4)
	if err := acc.Add([]float64{1}, []float64{1, 2}); err == nil || !strings.Contains(err.Error(), "hypothesis row") {
		t.Errorf("hyp mismatch error = %v", err)
	}
	peak := make([]float64, 4)
	at := make([]int, 4)
	if err := acc.PeaksInto(peak, at); err == nil || !strings.Contains(err.Error(), ">= 3 traces (have 0)") {
		t.Errorf("too-few error = %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := acc.Add([]float64{float64(i)}, []float64{1, 2, 3, float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := acc.PeaksInto(peak[:2], at); err == nil || !strings.Contains(err.Error(), "dst length") {
		t.Errorf("short dst error = %v", err)
	}
}

// TestAccumulatorAddAllocs pins the streaming hot paths to zero
// allocations per trace once the first Add has sized the state — the
// AllocsPerRun side of the //emsim:noalloc contract.
func TestAccumulatorAddAllocs(t *testing.T) {
	trace := make([]float64, 64)
	hyp := make([]float64, 16)
	for i := range trace {
		trace[i] = float64(i) * 0.5
	}
	for g := range hyp {
		hyp[g] = float64(g)
	}

	w := NewWelchAccumulator()
	if err := w.Add(0, trace); err != nil { // sizing Add, allowed to allocate
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(100, func() {
		if err := w.Add(0, trace); err != nil {
			t.Fatal(err)
		}
		if err := w.Add(1, trace); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("WelchAccumulator.Add allocs/run = %v, want 0", got)
	}

	acc := NewCorrAccumulator(len(hyp))
	if err := acc.Add(trace, hyp); err != nil { // sizing Add
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(100, func() {
		if err := acc.Add(trace, hyp); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("CorrAccumulator.Add allocs/run = %v, want 0", got)
	}

	// The snapshot paths reuse caller-provided storage too.
	tv, err := w.TInto(nil)
	if err != nil {
		t.Fatal(err)
	}
	peak := make([]float64, len(hyp))
	at := make([]int, len(hyp))
	if got := testing.AllocsPerRun(100, func() {
		var err error
		tv, err = w.TInto(tv)
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.PeaksInto(peak, at); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("snapshot allocs/run = %v, want 0", got)
	}
}
