// keyrecovery turns EMSim around: instead of defending, it plays the
// attacker, using the trained model as a *template generator*. A victim
// device runs an S-box lookup keyed with a secret byte; the attacker
// captures noisy EM traces for known plaintexts, simulates the same
// gadget for every candidate key, and picks the candidate whose simulated
// signals best explain the measurements. This is the flip side of the
// paper's leakage-assessment story: if the simulator is accurate enough
// to assess leakage, it is accurate enough to exploit it.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"emsim"
	"emsim/internal/aes"
	"emsim/internal/asm"
	"emsim/internal/core"
	"emsim/internal/isa"
)

// gadget builds the victim program: t5 = sbox[pt ^ key]. Both the lookup
// address and the loaded value depend on the secret.
func gadget(pt, key byte) []uint32 {
	b := asm.NewBuilder()
	b.Nop(6)
	b.La(isa.S0, "sbox")
	b.I(isa.Addi(isa.T1, isa.Zero, int32(pt)))
	b.I(isa.Addi(isa.T2, isa.Zero, int32(key)))
	b.Nop(4)
	// The lookup runs several times per invocation (as it would inside a
	// real cipher's rounds). Between lookups the involved latches are
	// driven back to fixed values (a zeroing XOR and a constant-address
	// load), so every iteration produces a fresh set of data-dependent
	// transitions instead of latching the same values silently.
	for i := 0; i < 8; i++ {
		b.I(isa.Xor(isa.T3, isa.T1, isa.T2)) // EX result: 0 -> pt^key
		b.I(isa.Add(isa.T4, isa.S0, isa.T3))
		b.I(isa.Lbu(isa.T5, isa.T4, 0)) // MEM data: S[0] -> S[pt^key]
		b.Nop(2)
		b.I(isa.Xor(isa.T3, isa.T3, isa.T3)) // EX result back to 0
		b.I(isa.Lbu(isa.T6, isa.S0, 0))      // MEM data back to S[0]
		b.Nop(3)
	}
	b.Nop(4)
	b.I(isa.Ebreak())
	b.Label("sbox")
	for i := 0; i < 256; i += 4 {
		b.Word(uint32(aes.SBox(byte(i))) | uint32(aes.SBox(byte(i+1)))<<8 |
			uint32(aes.SBox(byte(i+2)))<<16 | uint32(aes.SBox(byte(i+3)))<<24)
	}
	return b.MustAssemble().Words
}

func main() {
	const secret byte = 0x3A // known only to the "victim" device below
	const nTraces = 48

	dev := emsim.NewDevice(emsim.DefaultDeviceOptions())
	fmt.Println("training the attacker's model (public knowledge: the")
	fmt.Println("microarchitecture and a profiling device)...")
	// The attacker invests in a rich activity model: template resolution
	// is bounded by how many transition bits the regression keeps.
	model, err := emsim.Train(dev, emsim.TrainOptions{MaxActivityBits: 160})
	if err != nil {
		log.Fatal(err)
	}
	spc := model.SamplesPerCycle
	cfg := dev.Options().CPU

	// Victim phase: capture noisy traces for known random plaintexts.
	rng := rand.New(rand.NewSource(7))
	fmt.Printf("\ncapturing %d traces from the victim (8 captures averaged each)...\n", nTraces)
	type capture struct {
		pt   byte
		amps []float64 // per-cycle amplitudes extracted from the raw trace
	}
	var caps []capture
	for i := 0; i < nTraces; i++ {
		pt := byte(rng.Intn(256))
		_, sig, err := dev.MeasureAveraged(gadget(pt, secret), 8)
		if err != nil {
			log.Fatal(err)
		}
		amps, err := core.ExtractAmplitudes(sig, spc, model.Kernel)
		if err != nil {
			log.Fatal(err)
		}
		caps = append(caps, capture{pt: pt, amps: amps})
	}

	// Attack phase: for each candidate key, simulate each trace's gadget
	// and accumulate the squared amplitude distance. The 256×nTraces
	// template simulations all stream through one Session with a recycled
	// signal buffer — this loop is exactly the campaign shape the
	// streaming pipeline exists for.
	fmt.Println("matching against simulated templates for all 256 candidates...")
	sess, err := emsim.NewSession(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	scores := make([]float64, 256)
	var sig []float64
	for g := 0; g < 256; g++ {
		for _, cp := range caps {
			sig, err = sess.SimulateProgramInto(sig, gadget(cp.pt, byte(g)))
			if err != nil {
				log.Fatal(err)
			}
			pred, err := core.ExtractAmplitudes(sig, spc, model.Kernel)
			if err != nil {
				log.Fatal(err)
			}
			n := len(pred)
			if len(cp.amps) < n {
				n = len(cp.amps)
			}
			for c := 0; c < n; c++ {
				d := cp.amps[c] - pred[c]
				scores[g] += d * d
			}
		}
	}

	// Rank candidates by ascending distance.
	order := make([]int, 256)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })

	fmt.Println("\ntop candidates (lower distance = better explanation):")
	for i := 0; i < 5; i++ {
		g := order[i]
		tag := ""
		if byte(g) == secret {
			tag = "  <-- the secret"
		}
		fmt.Printf("  #%d  key=0x%02X  distance %.3f%s\n", i+1, g, scores[g], tag)
	}
	rank := 0
	for i, g := range order {
		if byte(g) == secret {
			rank = i + 1
		}
	}
	switch {
	case rank == 1:
		fmt.Printf("\nkey byte RECOVERED outright from %d traces of simulated templates.\n", nTraces)
	case rank <= 4:
		fmt.Printf("\nkey space reduced from 256 to %d candidates (secret ranked #%d) —\n", rank, rank)
		fmt.Println("a brute-force pass over the survivors completes the attack. The")
		fmt.Println("residual ambiguity sits in bits whose transition weights the model's")
		fmt.Println("stepwise regression pruned: template resolution is bounded by model")
		fmt.Println("fidelity, which is exactly the paper's leakage-assessment premise")
		fmt.Println("read in reverse.")
	default:
		fmt.Printf("\nsecret ranked #%d of 256 — more traces would close the gap.\n", rank)
	}
}
