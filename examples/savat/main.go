// savat reproduces the paper's Table II: the SAVAT metric (signal
// available to an attacker who wants to distinguish instruction A from
// instruction B) computed from real measurements and from simulated
// signals, for the six events LDM, LDC, NOP, ADD, MUL, DIV.
package main

import (
	"fmt"
	"log"

	"emsim"
)

const (
	perHalf = 8
	periods = 16
)

func main() {
	dev := emsim.NewDevice(emsim.DefaultDeviceOptions())
	fmt.Println("training the model...")
	model, err := emsim.Train(dev, emsim.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	events := []emsim.SavatInst{emsim.LDM, emsim.LDC, emsim.NOP, emsim.ADD, emsim.MUL, emsim.DIV}
	spc := dev.SamplesPerCycle()
	// One streaming Session renders all 36 simulated microbenchmarks.
	sess, err := emsim.NewSession(model, dev.Options().CPU)
	if err != nil {
		log.Fatal(err)
	}

	measure := func(a, b emsim.SavatInst) (real, sim float64) {
		words, err := emsim.SavatProgram(a, b, perHalf, periods)
		if err != nil {
			log.Fatal(err)
		}
		tr, sig, err := dev.MeasureAveraged(words, 10)
		if err != nil {
			log.Fatal(err)
		}
		real, err = emsim.Savat(sig, spc, len(tr), periods)
		if err != nil {
			log.Fatal(err)
		}
		ssig, err := sess.SimulateProgram(words)
		if err != nil {
			log.Fatal(err)
		}
		sim, err = emsim.Savat(ssig, spc, sess.Cycles(), periods)
		if err != nil {
			log.Fatal(err)
		}
		return real, sim
	}

	fmt.Println("\nSAVAT, real(R) / simulated(S)  — cf. paper Table II")
	fmt.Print("      ")
	for _, b := range events {
		fmt.Printf("%14s", b)
	}
	fmt.Println()
	for _, a := range events {
		fmt.Printf("%-6s", a)
		for _, b := range events {
			r, s := measure(a, b)
			fmt.Printf("  %5.2f /%5.2f", r, s)
		}
		fmt.Println()
	}
	fmt.Println("\nRead it like the paper: the diagonal is ~0 (identical instructions")
	fmt.Println("give an attacker nothing), LDM rows dominate (memory accesses are")
	fmt.Println("loud), and simulated values track the measured ones.")
}
