// Quickstart: train an EMSim model against the reference device, simulate
// a small program's EM side-channel signal, and check the simulation
// against a measurement — the minimal end-to-end loop of the paper.
package main

import (
	"fmt"
	"log"

	"emsim"
)

func main() {
	// The synthetic device plays the role of the paper's FPGA board,
	// magnetic probe and oscilloscope. Its physics are hidden from the
	// model, which must learn them from measurements.
	dev := emsim.NewDevice(emsim.DefaultDeviceOptions())

	fmt.Println("training the model (kernel fit, baseline amplitudes,")
	fmt.Println("stepwise activity regression, MISO coefficients)...")
	model, err := emsim.Train(dev, emsim.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted kernel: %v (theta %.2f, T0 %.3f cycles)\n\n",
		model.Kernel.Kind, model.Kernel.Theta, model.Kernel.Period)

	// Any RV32IM program works; this one sums 1..100.
	prog, err := emsim.Assemble(`
		li   t0, 100
		li   t1, 0
	loop:
		add  t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		li   t2, 0x1000
		sw   t1, 0(t2)
		ebreak
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Pure simulation: no measurement involved. This is the design-stage
	// capability the paper motivates — EM leakage estimates before any
	// hardware exists.
	trace, signal, err := model.SimulateProgram(emsim.DefaultCPUConfig(), prog.Words)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d cycles -> %d analog samples\n", len(trace), len(signal))

	// Validation: measure the same program on the device and score the
	// match with the paper's per-cycle correlation metric.
	cmp, err := model.CompareOnDevice(dev, prog.Words, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated-vs-measured accuracy: %.1f%% over %d cycles\n",
		100*cmp.Accuracy, cmp.Cycles)
	fmt.Println("(the paper reports 94.1% across its full benchmark)")

	// The architectural result is available too: the sum landed in memory.
	c := emsim.NewCPU(emsim.DefaultCPUConfig())
	if _, err := c.RunProgram(prog.Words); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprogram result: sum(1..100) = %d\n", c.Memory().ReadWord(0x1000))
}
