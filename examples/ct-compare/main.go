// ct-compare demonstrates the paper's design-stage promise for software
// developers: decide between two implementations of a secret comparison
// by their *simulated* EM leakage, before any hardware exists.
//
// Implementation A branches on each secret byte (classic timing/EM
// leak); implementation B is branchless (constant control flow). TVLA on
// purely simulated signals flags A and clears B's control-flow leak.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"emsim"
	"emsim/internal/asm"
	"emsim/internal/isa"
	"emsim/internal/leakage"
)

// branchyCompare returns a program that compares the 4-byte input block
// at `input` against a secret constant byte by byte, bailing out at the
// first mismatch — control flow depends on the secret/input relation.
func branchyCompare(input [16]byte) []uint32 {
	b := asm.NewBuilder()
	b.La(isa.S0, "input")
	b.Li(isa.T0, 0) // match counter
	secret := []int32{0x41, 0x17, 0x9C, 0x5E}
	for i, s := range secret {
		b.I(isa.Lbu(isa.T1, isa.S0, int32(i)))
		b.Li(isa.T2, s)
		b.Branch(isa.BNE, isa.T1, isa.T2, "fail")
		b.I(isa.Addi(isa.T0, isa.T0, 1))
	}
	b.Label("fail")
	b.I(isa.Ebreak())
	b.Label("input")
	for c := 0; c < 4; c++ {
		b.Word(uint32(input[4*c]) | uint32(input[4*c+1])<<8 |
			uint32(input[4*c+2])<<16 | uint32(input[4*c+3])<<24)
	}
	return b.MustAssemble().Words
}

// branchlessCompare accumulates XOR differences — same instructions
// executed regardless of the data.
func branchlessCompare(input [16]byte) []uint32 {
	b := asm.NewBuilder()
	b.La(isa.S0, "input")
	b.Li(isa.T0, 0) // difference accumulator
	secret := []int32{0x41, 0x17, 0x9C, 0x5E}
	for i, s := range secret {
		b.I(isa.Lbu(isa.T1, isa.S0, int32(i)))
		b.Li(isa.T2, s)
		b.I(isa.Xor(isa.T3, isa.T1, isa.T2))
		b.I(isa.Or(isa.T0, isa.T0, isa.T3))
	}
	b.I(isa.Sltiu(isa.T0, isa.T0, 1)) // 1 if equal
	b.I(isa.Ebreak())
	b.Label("input")
	for c := 0; c < 4; c++ {
		b.Word(uint32(input[4*c]) | uint32(input[4*c+1])<<8 |
			uint32(input[4*c+2])<<16 | uint32(input[4*c+3])<<24)
	}
	return b.MustAssemble().Words
}

func main() {
	dev := emsim.NewDevice(emsim.DefaultDeviceOptions())
	fmt.Println("training the model once...")
	model, err := emsim.Train(dev, emsim.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Simulated trace sources: one streaming Session feeds both
	// assessments, adding a nominal noise floor so the t-test has variance
	// to work with. No device involved from here on — this is the
	// design-stage flow.
	sess, err := emsim.NewSession(model, dev.Options().CPU)
	if err != nil {
		log.Fatal(err)
	}
	noiseStd := dev.Options().NoiseStd
	makeSrc := func(build func([16]byte) []uint32, seed int64) emsim.TraceSource {
		noise := rand.New(rand.NewSource(seed))
		return leakage.SimSource(sess,
			func(input [16]byte) ([]uint32, error) { return build(input), nil },
			func() float64 { return noiseStd * noise.NormFloat64() })
	}

	// Fixed input = the secret (full match, longest branchy path);
	// random inputs mismatch almost immediately.
	var fixed [16]byte
	copy(fixed[:4], []byte{0x41, 0x17, 0x9C, 0x5E})

	const traces = 60
	assess := func(name string, build func([16]byte) []uint32, seed int64) {
		res, err := emsim.TVLA(makeSrc(build, seed), fixed, rand.New(rand.NewSource(seed+1)), traces)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "no leakage found"
		if res.Leaks() {
			verdict = fmt.Sprintf("LEAKS (%d samples above |t|=4.5)", len(res.LeakyPoints))
		}
		fmt.Printf("%-22s max|t| = %6.1f  -> %s\n", name, res.MaxAbsT, verdict)
	}
	fmt.Printf("\nsimulated TVLA, %d traces per group:\n", traces)
	assess("branchy compare:", branchyCompare, 100)
	assess("branchless compare:", branchlessCompare, 200)

	fmt.Println("\nThe branchy version's control flow (and thus its EM signal and even")
	fmt.Println("its length) depends on how many secret bytes match; the branchless")
	fmt.Println("one executes identically for every input, leaving only the low-level")
	fmt.Println("data-dependent switching near the detection threshold. A compiler or")
	fmt.Println("developer can make this call from simulation alone — §VI-A's point.")
}
