// defense walks the designer's countermeasure loop: train a model,
// attack the undefended AES implementation until the key byte falls,
// then enable instruction shuffling and watch the same attack campaign
// fail within the same trace budget — the security/overhead evidence a
// designer needs before committing silicon or software changes.
//
// The campaign is defend.Evaluate: a TVLA fixed-vs-random detection
// sweep (how fast does *any* leakage become visible?) and a CPA
// key-recovery curve (how many traces until the key byte ranks first?),
// run on both the baseline and the defended arm with identical
// randomization seeds.
package main

import (
	"context"
	"fmt"
	"log"

	"emsim"
)

func main() {
	dev := emsim.NewDevice(emsim.DefaultDeviceOptions())
	fmt.Println("training the designer's model against the bench device...")
	// A reduced campaign keeps this walkthrough fast; the defense
	// comparison is about relative leakage, which survives the smaller
	// model.
	model, err := emsim.Train(dev, emsim.TrainOptions{
		Runs:                3,
		InstancesPerCluster: 10,
		MixedPrograms:       2,
		MixedLength:         200,
		Seed:                7,
	})
	if err != nil {
		log.Fatal(err)
	}

	spec, err := emsim.ParseDefenseSpec("shuffle")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("evaluating", spec, "against baseline AES-128 (TVLA + CPA campaigns)...")
	report, err := emsim.EvaluateDefense(context.Background(), emsim.DefendOptions{
		Model:   model,
		CPU:     dev.Options().CPU,
		Defense: spec,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(report)

	fmt.Println()
	fmt.Println("CPA key-rank curve (rank 0 = key byte recovered):")
	fmt.Printf("%8s %14s %14s\n", "traces", "baseline rank", "defended rank")
	for i, p := range report.Baseline.CPARanks {
		d := report.Defended.CPARanks[i]
		fmt.Printf("%8d %14d %14d\n", p.Traces, p.Rank, d.Rank)
	}

	fmt.Println()
	switch {
	case report.Baseline.DiscloseTraces == 0:
		fmt.Println("unexpected: the baseline attack did not disclose the key byte")
	case report.Defended.DiscloseTraces == 0:
		fmt.Printf("baseline key byte disclosed after %d traces; under %s the\n",
			report.Baseline.DiscloseTraces, report.Defense)
		fmt.Printf("attack fails within the whole %d-trace budget (cost > %.1fx)\n",
			report.Baseline.CPARanks[len(report.Baseline.CPARanks)-1].Traces,
			report.AttackCostMultiplier)
	default:
		fmt.Printf("baseline discloses at %d traces, defended at %d (%.1fx the traces)\n",
			report.Baseline.DiscloseTraces, report.Defended.DiscloseTraces,
			report.AttackCostMultiplier)
	}
	fmt.Printf("cycle overhead of the defense: %+.1f%%\n", 100*report.CycleOverhead)
}
