# Iterative Fibonacci: F(16) into `result`. Straight ALU pipeline flow.
	li   t0, 16
	li   t1, 0          # F(0)
	li   t2, 1          # F(1)
fib:
	add  t3, t1, t2
	mv   t1, t2
	mv   t2, t3
	addi t0, t0, -1
	bnez t0, fib
	la   t4, result
	sw   t1, 0(t4)
	ebreak
result:
	.word 0
