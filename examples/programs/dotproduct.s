# Dot product of two 8-element vectors, result stored at `result`.
# Demonstrates: loops, loads (hits after the first touch), MAC with MUL.
	la   s0, veca
	la   s1, vecb
	li   t0, 8          # element count
	li   t1, 0          # accumulator
loop:
	lw   t2, 0(s0)
	lw   t3, 0(s1)
	mul  t4, t2, t3
	add  t1, t1, t4
	addi s0, s0, 4
	addi s1, s1, 4
	addi t0, t0, -1
	bnez t0, loop
	la   t5, result
	sw   t1, 0(t5)
	ebreak

veca:
	.word 1, 2, 3, 4, 5, 6, 7, 8
vecb:
	.word 8, 7, 6, 5, 4, 3, 2, 1
result:
	.word 0
