# In-place bubble sort of an 8-element array. Demonstrates: nested loops,
# data-dependent branches (the classic EM side-channel shape: control flow
# varies with the data), loads and stores.
	la   s0, data
	li   s1, 8          # n
outer:
	addi s1, s1, -1
	blez s1, done
	li   t0, 0          # i = 0
	mv   s2, s0         # p = data
inner:
	lw   t1, 0(s2)
	lw   t2, 4(s2)
	ble  t1, t2, noswap
	sw   t2, 0(s2)
	sw   t1, 4(s2)
noswap:
	addi s2, s2, 4
	addi t0, t0, 1
	blt  t0, s1, inner
	j    outer
done:
	ebreak

data:
	.word 5, 2, 8, 1, 9, 3, 7, 4
