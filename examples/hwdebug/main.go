// hwdebug reproduces the paper's §VI-B debugging use-case (Figure 11): the
// trained model's simulation serves as the "expected" reference signal;
// a chip whose multiplier was fabricated with truncated operand registers
// betrays itself by emitting less than the reference exactly at the MUL
// execute cycles — with zero on-chip test infrastructure.
package main

import (
	"fmt"
	"log"

	"emsim"
	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/isa"
)

func main() {
	dev := emsim.NewDevice(emsim.DefaultDeviceOptions())
	fmt.Println("training the reference model on a known-good chip...")
	model, err := emsim.Train(dev, emsim.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The test program: full-width multiplies amid NOPs.
	b := emsim.NewBuilder()
	b.Nop(6)
	b.I(isa.Li(isa.T1, -0x12345678)...)
	b.I(isa.Li(isa.T2, -0x00C0FFEE)...)
	b.Nop(6)
	for i := 0; i < 4; i++ {
		b.I(isa.Mul(isa.T0, isa.T1, isa.T2))
		b.Nop(8)
	}
	b.Nop(4)
	b.I(isa.Ebreak())
	prog := b.MustAssemble()

	// A second physical chip from the same wafer — but its multiplier
	// operand registers only latch the low byte (the Figure 11 defect).
	opts := dev.Options()
	opts.CPU.BuggyMul = true
	opts.NoiseSeed += 7
	buggy := emsim.NewDevice(opts)

	inspect := func(name string, d *emsim.Device) []float64 {
		cmp, err := model.CompareOnDevice(d, prog.Words, 30)
		if err != nil {
			log.Fatal(err)
		}
		ma, err := core.ExtractAmplitudes(cmp.Measured, model.SamplesPerCycle, model.Kernel)
		if err != nil {
			log.Fatal(err)
		}
		sa, err := core.ExtractAmplitudes(cmp.Simulated, model.SamplesPerCycle, model.Kernel)
		if err != nil {
			log.Fatal(err)
		}
		def := make([]float64, len(ma))
		for i := range ma {
			def[i] = sa[i] - ma[i] // positive = chip emits LESS than expected
		}
		fmt.Printf("%s: accuracy vs reference %.1f%%\n", name, 100*cmp.Accuracy)
		return def
	}

	fmt.Println("\ncomparing chips against the simulated reference signal...")
	healthy := inspect("known-good chip", dev)
	suspect := inspect("suspect chip   ", buggy)

	// Locate the MUL execute cycles from the reference trace.
	c := emsim.NewCPU(dev.Options().CPU)
	tr, err := c.RunProgram(prog.Words)
	if err != nil {
		log.Fatal(err)
	}
	// A defective multiplier shows up across the MUL's whole pipeline
	// passage: the execute cycles (missing switching) and the following
	// MEM/WB cycles (the wrong narrow product rippling through the
	// latches). Attribute a window accordingly.
	mulCycles := map[int]bool{}
	for i := range tr {
		for s := cpu.Stage(0); s < cpu.NumStages; s++ {
			st := tr[i].Stages[s]
			if st.Op == isa.MUL && !st.Bubble {
				mulCycles[i] = true
				mulCycles[i+1] = true
			}
		}
	}

	fmt.Println("\nper-cycle amplitude deficit vs reference (suspect − known-good):")
	worst, worstAt := 0.0, -1
	for i := 4; i < len(suspect)-4 && i < len(healthy); i++ {
		contrast := suspect[i] - healthy[i]
		if contrast > worst {
			worst, worstAt = contrast, i
		}
		if contrast > 0.03 {
			tag := ""
			if mulCycles[i] {
				tag = "  <-- MUL in flight"
			}
			fmt.Printf("  cycle %3d: %.3f%s\n", i, contrast, tag)
		}
	}
	fmt.Printf("  (worst contrast %.3f at cycle %d)\n", worst, worstAt)
	if worstAt >= 0 && mulCycles[worstAt] {
		fmt.Printf("\nverdict: the defect is localized to cycle %d, within a multiplier's\n", worstAt)
		fmt.Println("pipeline passage — as Figure 11 localizes its under-active multiplier.")
	} else {
		fmt.Println("\nverdict: no defect localized.")
	}
}
