// aes-tvla reproduces the paper's §VI-A use-case: assess the EM leakage of
// AES-128 with the TVLA fixed-vs-random methodology, once from real
// (device) measurements and once from purely simulated signals, and show
// that the simulated assessment finds the same leakage pattern — meaning a
// software developer could run this at design time without a lab.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"emsim"
	"emsim/internal/leakage"
)

func main() {
	dev := emsim.NewDevice(emsim.DefaultDeviceOptions())
	fmt.Println("training the model...")
	model, err := emsim.Train(dev, emsim.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	var fixed [16]byte
	copy(fixed[:], "tvla-fixed-input")

	build := func(input [16]byte) ([]uint32, error) {
		prog, err := emsim.BuildAES(key, input)
		if err != nil {
			return nil, err
		}
		return prog.Words, nil
	}
	// Real source: noisy captures from the device.
	realSrc := emsim.TraceSource(dev.CaptureSource(build))
	// Simulated source: one streaming Session renders all 2×40 AES traces
	// (resettable core, reused buffers), plus the same noise level so the
	// t statistics are comparable.
	sess, err := emsim.NewSession(model, dev.Options().CPU)
	if err != nil {
		log.Fatal(err)
	}
	noise := rand.New(rand.NewSource(99))
	noiseStd := dev.Options().NoiseStd
	simSrc := leakage.SimSource(sess, build, func() float64 { return noiseStd * noise.NormFloat64() })

	const traces = 40
	fmt.Printf("running TVLA with %d traces per group...\n\n", traces)
	realRes, err := emsim.TVLA(realSrc, fixed, rand.New(rand.NewSource(1)), traces)
	if err != nil {
		log.Fatal(err)
	}
	simRes, err := emsim.TVLA(simSrc, fixed, rand.New(rand.NewSource(2)), traces)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, r *emsim.TVLAResult) {
		verdict := "PASSES (no leakage found)"
		if r.Leaks() {
			verdict = fmt.Sprintf("FAILS: %d samples above |t|=4.5", len(r.LeakyPoints))
		}
		fmt.Printf("%-10s max|t| = %6.1f  -> %s\n", name, r.MaxAbsT, verdict)
	}
	report("measured:", realRes)
	report("simulated:", simRes)

	fmt.Println("\nAES-128 with table lookups leaks heavily under both assessments —")
	fmt.Println("and the simulated one needed no oscilloscope, probe, or board.")
}
