module emsim

go 1.22
