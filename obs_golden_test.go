package emsim

import (
	"math"
	"testing"

	"emsim/internal/obs"
)

// TestGoldenSignalsTracedBitIdentical is the observability layer's
// determinism gate over the golden corpus: every fixture's reconstructed
// signal must be byte-for-byte identical with the span recorder enabled
// and disabled. The recorder reads the clock but must never feed back
// into the simulation — a single differing bit here means instrumentation
// changed the science.
func TestGoldenSignalsTracedBitIdentical(t *testing.T) {
	m := goldenModel(t)
	names := goldenPrograms(t)

	obs.Disable()
	plain := make(map[string][]float64, len(names))
	for _, name := range names {
		plain[name] = simulateFixture(t, m, name)
	}

	obs.Enable(1 << 12)
	defer obs.Disable()
	for _, name := range names {
		traced := simulateFixture(t, m, name)
		want := plain[name]
		if len(traced) != len(want) {
			t.Fatalf("%s: traced run produced %d samples, untraced %d", name, len(traced), len(want))
		}
		for i := range want {
			if math.Float64bits(traced[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s: sample %d differs with tracing on: %x vs %x",
					name, i, math.Float64bits(traced[i]), math.Float64bits(want[i]))
			}
		}
	}

	// And the traced runs must actually have been traced.
	found := false
	for _, e := range obs.Snapshot() {
		if e.Name == "session.simulate" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no session.simulate span recorded during the traced corpus run")
	}
}
